//! Typed simulation errors.
//!
//! Every user-reachable failure of the engine — a configuration the
//! simulator cannot honor, or a run the forward-progress watchdog had to
//! abort — surfaces as a [`SimError`] carrying enough context to act on,
//! instead of an `assert!`/`unwrap` panic deep inside the run loop. The
//! sweep runner in `shadow-bench` leans on this to keep one bad cell from
//! killing a multi-hundred-cell batch.

use shadow_sim::time::Cycle;
use std::fmt;

/// Why a simulation could not be constructed or completed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration (or the streams/mitigation it was assembled with)
    /// is invalid. `what` names the offending knob; `why` says what is
    /// wrong with it and what a valid value looks like.
    InvalidConfig {
        /// The offending field or argument (e.g. `"streams"`, `"timing"`).
        what: &'static str,
        /// What is wrong and how to fix it.
        why: String,
    },
    /// The forward-progress watchdog aborted the run: the engine stopped
    /// making progress long before `max_cycles` (scheduler livelock,
    /// BlockHammer/RFM starvation, or a stuck-at-cycle loop). The snapshot
    /// records the controller state at detection time for diagnosis.
    Stalled(Box<StallSnapshot>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what, why } => {
                write!(f, "invalid configuration ({what}): {why}")
            }
            SimError::Stalled(snap) => write!(f, "{snap}"),
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid(what: &'static str, why: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            what,
            why: why.into(),
        }
    }

    /// The structured stall snapshot, when this error is a watchdog abort.
    ///
    /// The retry/backoff layer in `shadow-bench` uses this to carry the
    /// *typed* diagnosis (not just the formatted string) through retry
    /// decisions and progress events, so a campaign log can say *what
    /// kind* of stall each attempt hit.
    pub fn stall_snapshot(&self) -> Option<&StallSnapshot> {
        match self {
            SimError::Stalled(snap) => Some(snap),
            SimError::InvalidConfig { .. } => None,
        }
    }
}

/// What kind of forward-progress failure the watchdog detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// No command committed *and* no request completed for a full watchdog
    /// window while requests sat queued: the scheduler is live-locked.
    Livelock,
    /// Commands kept issuing (refreshes, precharges) but no request
    /// completed for a full window while requests sat queued — the
    /// starvation shape adversarial patterns induce under throttling
    /// schemes (BlockHammer blacklists, RFM storms).
    Starvation,
    /// The run loop repeated the same cycle beyond any plausible number of
    /// same-cycle scheduling passes: a completion-at-`now` loop is feeding
    /// itself.
    StuckCycle,
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::Livelock => write!(f, "livelock (no commands, no completions)"),
            StallKind::Starvation => write!(f, "starvation (commands issue, nothing completes)"),
            StallKind::StuckCycle => write!(f, "stuck-at-cycle repeat loop"),
        }
    }
}

/// Per-bank state captured in a [`StallSnapshot`] (only banks with queued
/// work are recorded).
#[derive(Debug, Clone, PartialEq)]
pub struct BankStall {
    /// Flat bank index.
    pub bank: usize,
    /// Requests waiting in the bank queue.
    pub queue_depth: usize,
    /// The open DA row, if any.
    pub open_row: Option<u32>,
    /// Earliest cycle the head request may activate (throttling delays
    /// land here — a head parked far in the future is the starvation
    /// smoking gun).
    pub head_ready_at: Cycle,
    /// Whether the bank has an RFM pending (RAA counter at its limit).
    pub rfm_pending: bool,
}

/// Diagnostic state captured when the watchdog aborts a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSnapshot {
    /// What shape of stall was detected.
    pub kind: StallKind,
    /// Cycle at which the watchdog fired (far below `max_cycles` by
    /// construction — that is the point).
    pub cycle: Cycle,
    /// The configured watchdog window, in cycles.
    pub window: Cycle,
    /// Cycle of the last delivered completion.
    pub last_completion_at: Cycle,
    /// Cycle of the last committed DRAM command.
    pub last_command_at: Cycle,
    /// Requests completed before the stall.
    pub completed_requests: u64,
    /// Total requests queued across all banks at detection time.
    pub queued_requests: usize,
    /// Cycles of mitigation-imposed channel blocking accumulated so far.
    pub channel_blocked_cycles: Cycle,
    /// Cycles of ACT throttling delay accumulated so far.
    pub throttle_cycles: Cycle,
    /// Per-bank queue state, deepest queues first (capped — see
    /// [`StallSnapshot::MAX_BANKS`]).
    pub banks: Vec<BankStall>,
    /// Tail of the command-trace ring (newest last), formatted, when the
    /// run had tracing enabled (`SystemConfig::trace_depth > 0`). Empty
    /// otherwise.
    pub trace_tail: Vec<String>,
}

impl StallSnapshot {
    /// At most this many per-bank entries are retained (deepest first).
    pub const MAX_BANKS: usize = 8;
    /// At most this many trailing trace records are retained.
    pub const MAX_TRACE_TAIL: usize = 16;

    /// Compact one-line summary for progress events and retry logs —
    /// the stall kind and headline counters without the per-bank dump
    /// the full [`Display`](fmt::Display) form carries.
    pub fn brief(&self) -> String {
        format!(
            "{} at cycle {} ({} completed, {} queued)",
            self.kind, self.cycle, self.completed_requests, self.queued_requests
        )
    }
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stalled at cycle {}: {} — no completion for {} cycles (window {}), \
             last command at {}, {} completed, {} queued",
            self.cycle,
            self.kind,
            self.cycle.saturating_sub(self.last_completion_at),
            self.window,
            self.last_command_at,
            self.completed_requests,
            self.queued_requests
        )?;
        for b in &self.banks {
            write!(
                f,
                "; bank {} depth {} open {:?} head_ready {}{}",
                b.bank,
                b.queue_depth,
                b.open_row,
                b.head_ready_at,
                if b.rfm_pending { " rfm!" } else { "" }
            )?;
        }
        if !self.trace_tail.is_empty() {
            write!(f, "; trace tail: {}", self.trace_tail.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> StallSnapshot {
        StallSnapshot {
            kind: StallKind::Starvation,
            cycle: 120_000,
            window: 50_000,
            last_completion_at: 60_000,
            last_command_at: 119_000,
            completed_requests: 42,
            queued_requests: 7,
            channel_blocked_cycles: 0,
            throttle_cycles: 9_999,
            banks: vec![BankStall {
                bank: 3,
                queue_depth: 7,
                open_row: Some(11),
                head_ready_at: 9_000_000,
                rfm_pending: false,
            }],
            trace_tail: vec!["@119000 REF r0".into()],
        }
    }

    #[test]
    fn display_carries_the_diagnosis() {
        let msg = SimError::Stalled(Box::new(snapshot())).to_string();
        assert!(msg.contains("starvation"), "{msg}");
        assert!(msg.contains("cycle 120000"), "{msg}");
        assert!(msg.contains("bank 3"), "{msg}");
        assert!(msg.contains("head_ready 9000000"), "{msg}");
        assert!(msg.contains("trace tail"), "{msg}");
    }

    #[test]
    fn stall_snapshot_accessor_and_brief() {
        let err = SimError::Stalled(Box::new(snapshot()));
        let snap = err.stall_snapshot().expect("stalled carries a snapshot");
        assert_eq!(snap.kind, StallKind::Starvation);
        let brief = snap.brief();
        assert!(brief.contains("starvation"), "{brief}");
        assert!(brief.contains("cycle 120000"), "{brief}");
        assert!(
            !brief.contains("bank 3"),
            "brief must omit the per-bank dump: {brief}"
        );
        assert!(SimError::invalid("mlp", "nope").stall_snapshot().is_none());
    }

    #[test]
    fn invalid_config_display_names_the_knob() {
        let e = SimError::invalid("streams", "need at least one core");
        assert_eq!(
            e.to_string(),
            "invalid configuration (streams): need at least one core"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::invalid("mlp", "must be > 0"));
        assert!(e.to_string().contains("mlp"));
    }
}
