//! Simulation configuration.

use crate::error::SimError;
use shadow_dram::geometry::DramGeometry;
use shadow_dram::timing::TimingParams;
use shadow_rh::RhParams;
use shadow_sim::time::Cycle;

/// Row-buffer management policy of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Leave rows open until a conflicting request arrives (FR-FCFS
    /// default; rewards row-buffer locality).
    #[default]
    Open,
    /// Precharge as soon as no queued request hits the open row (trades
    /// hit latency for conflict latency; used as a scheduler ablation).
    Closed,
}

/// Configuration of a [`MemSystem`](crate::MemSystem) run.
///
/// Passive data: fields are public.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Logical (MC-visible) DRAM geometry. The physical geometry may gain
    /// extra rows per subarray from the mitigation (SHADOW's empty rows).
    pub geometry: DramGeometry,
    /// Timing parameters (mitigation tRCD extension applied at build).
    pub timing: TimingParams,
    /// Row Hammer model parameters.
    pub rh: RhParams,
    /// Per-core maximum outstanding memory requests (MLP window).
    pub mlp: usize,
    /// Stop after this many completed requests across all cores (0 = no
    /// request target; run to `max_cycles`).
    pub target_requests: u64,
    /// Hard cycle limit.
    pub max_cycles: Cycle,
    /// Whether the RFM interface is active (RAA counters + RFM commands).
    /// Set automatically when the mitigation uses RFM.
    pub raaimt_override: Option<u32>,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Posted (buffered) writes: stores complete at the controller
    /// immediately and drain to DRAM asynchronously — cores never stall on
    /// write bandwidth, as on real systems with deep write buffers.
    pub posted_writes: bool,
    /// Reference-engine switch: re-activate every bank before each
    /// scheduling pass, degrading `step()` and `next_event_after()` to the
    /// original full O(total banks) scan. Simulated outcomes are identical
    /// either way (the scan only skips banks that cannot accept a command);
    /// the engine-speedup bench flips this on to measure what the
    /// active-bank worklist buys. Normal runs leave it `false`.
    pub force_full_scan: bool,
    /// Reference-engine switch: run the memoized frontier *bitmask walk*
    /// (the PR3 `serial_fast` engine) instead of the default incremental
    /// event calendar. Simulated outcomes are bit-identical either way —
    /// the calendar visits exactly the banks the walk would visit (pinned
    /// by the determinism suite and the conformance fuzzer's
    /// calendar-defeating `frontier-walk` leg); the hotpath bench flips
    /// this on as the contemporaneous A/B baseline for the calendar's
    /// speedup. Ignored when [`force_full_scan`](Self::force_full_scan)
    /// already selects the scan reference. Normal runs leave it `false`.
    pub force_frontier_walk: bool,
    /// Reference-engine switch for FR-FCFS hit selection: scan the bank
    /// queue linearly for an open-row hit (the original `position()` walk,
    /// one translation per element per visit) instead of consulting the
    /// per-bank row index. Outcomes are bit-identical either way — the
    /// index is keyed by the same remap epoch the cached translations use,
    /// and the queue's seq order makes "front of the row's bucket" the
    /// same request the linear scan finds first (pinned by a dedicated
    /// proptest and the conformance fuzzer's `linear-frfcfs` leg). The
    /// benches flip this on to measure what the index buys. Normal runs
    /// leave it `false`.
    pub force_linear_frfcfs: bool,
    /// Reference-engine switch for the calendar's resolved-entry path: run
    /// the event calendar with the per-bank *decision* cache and CAS-burst
    /// streaming defeated, re-deriving every scheduling decision through
    /// the full `schedule_bank` tree each pass (the PR8 behaviour).
    /// Outcomes are bit-identical either way — a cached decision is pinned
    /// by the same seq stamps as its frontier and every gate/timing check
    /// stays live at consume time (pinned by the determinism suite and the
    /// conformance fuzzer's `unresolved-calendar` leg, the eighth
    /// variant). The hotpath bench flips this on to measure what resolved
    /// entries buy. Ignored when a reference engine is already selected.
    /// Normal runs leave it `false`.
    pub force_unresolved_calendar: bool,
    /// Command-trace ring depth. `0` (the default in every preset) disables
    /// tracing; non-zero retains the last `trace_depth` committed DRAM
    /// commands for the conformance oracle. Tracing never changes simulated
    /// behaviour (pinned by the determinism suite).
    pub trace_depth: usize,
    /// Reference-engine switch for the Row Hammer ledger: build every bank
    /// ledger in eager mode (restores applied immediately, `hottest()` as a
    /// full scan) instead of the default lazy stamp-based mode. Outcomes
    /// are bit-identical either way (pinned by the determinism suite and
    /// the conformance fuzzer's eager-ledger leg); the benches flip this on
    /// to measure what the lazy ledger buys. Normal runs leave it `false`.
    pub force_eager_ledger: bool,
    /// Collect the hot-path phase profile ([`SimReport::profile`]
    /// (crate::SimReport::profile)). Only effective when the crate is built
    /// with the `profiler` feature; observation-only either way — report
    /// equality ignores the profile and simulated behaviour is unchanged.
    pub profile: bool,
    /// Forward-progress watchdog window, in cycles. `0` (every preset's
    /// default) disables the watchdog. When non-zero,
    /// [`MemSystem::run_checked`](crate::MemSystem::run_checked) aborts
    /// with [`SimError::Stalled`] once no request has completed for a full
    /// window while requests sit queued — catching scheduler livelock and
    /// throttling starvation instead of silently burning to `max_cycles`.
    /// Observation-only on the non-stalling path: enabling it never
    /// changes a simulated outcome (pinned by the determinism suite).
    /// Size it well above the longest legitimate completion gap of the
    /// workload (compute gaps, refresh storms) — a few tREFI is a good
    /// floor.
    pub watchdog_window: Cycle,
    /// Channel-sharded execution: step each DRAM channel's scheduler slice
    /// on its own worker thread, synchronizing at every scheduling pass and
    /// merging commands/completions in fixed channel order. Reports *and*
    /// command traces are bit-identical to the serial engine (pinned by the
    /// determinism suite and the conformance fuzzer's sharded leg). Falls
    /// back to the serial engine when the config has a single channel, when
    /// [`force_full_scan`](Self::force_full_scan) selects the reference
    /// engine, or when the mitigation cannot split per-channel state
    /// (`Mitigation::split_channels` returns `None`); query
    /// [`MemSystem::sharding_active`](crate::MemSystem::sharding_active)
    /// for the resolved mode. Off in every preset.
    pub shard_channels: bool,
    /// Worker threads for the sharded engine: `0` (every preset's default)
    /// auto-detects the host's available parallelism; any value is clamped
    /// to the channel count. Ignored unless
    /// [`shard_channels`](Self::shard_channels) resolves to the sharded
    /// engine. The thread count never changes simulated outcomes — only
    /// wall-clock speed.
    pub shard_threads: usize,
}

impl SystemConfig {
    /// The paper's Table IV actual-system configuration (DDR4-2666,
    /// 4 channels) scaled for simulation.
    pub fn ddr4_actual_system() -> Self {
        SystemConfig {
            geometry: DramGeometry::ddr4_4ch(),
            timing: TimingParams::ddr4_2666(),
            rh: RhParams::paper_default(),
            mlp: 8,
            target_requests: 200_000,
            max_cycles: 200_000_000,
            raaimt_override: None,
            page_policy: PagePolicy::Open,
            posted_writes: false,
            force_full_scan: false,
            force_frontier_walk: false,
            force_linear_frfcfs: false,
            force_unresolved_calendar: false,
            trace_depth: 0,
            force_eager_ledger: false,
            profile: false,
            watchdog_window: 0,
            shard_channels: false,
            shard_threads: 0,
        }
    }

    /// The DDR5-4800 architectural-simulation configuration (Fig. 11).
    pub fn ddr5_sim() -> Self {
        SystemConfig {
            geometry: DramGeometry::ddr5_4ch(),
            timing: TimingParams::ddr5_4800(),
            rh: RhParams::paper_default(),
            mlp: 8,
            target_requests: 200_000,
            max_cycles: 400_000_000,
            raaimt_override: None,
            page_policy: PagePolicy::Open,
            posted_writes: false,
            force_full_scan: false,
            force_frontier_walk: false,
            force_linear_frfcfs: false,
            force_unresolved_calendar: false,
            trace_depth: 0,
            force_eager_ledger: false,
            profile: false,
            watchdog_window: 0,
            shard_channels: false,
            shard_threads: 0,
        }
    }

    /// A miniature configuration for fast tests.
    pub fn tiny() -> Self {
        SystemConfig {
            geometry: DramGeometry::tiny(),
            timing: TimingParams::tiny(),
            rh: RhParams::new(64, 2),
            mlp: 4,
            target_requests: 2_000,
            max_cycles: 2_000_000,
            raaimt_override: Some(16),
            page_policy: PagePolicy::Open,
            posted_writes: false,
            force_full_scan: false,
            force_frontier_walk: false,
            force_linear_frfcfs: false,
            force_unresolved_calendar: false,
            trace_depth: 0,
            force_eager_ledger: false,
            profile: false,
            watchdog_window: 0,
            shard_channels: false,
            shard_threads: 0,
        }
    }

    /// MC-visible capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry.capacity_bytes()
    }

    /// Checks every field the engine would otherwise trip over mid-run.
    ///
    /// [`MemSystem::try_new`](crate::MemSystem::try_new) calls this, so a
    /// bad sweep cell fails fast with a message naming the knob instead of
    /// panicking cycles into the simulation.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.geometry.total_banks() == 0 {
            return Err(SimError::invalid(
                "geometry",
                "no banks (channels × ranks × bank groups × banks must be ≥ 1)",
            ));
        }
        if self.geometry.rows_per_subarray == 0 || self.geometry.subarrays_per_bank == 0 {
            return Err(SimError::invalid(
                "geometry",
                "banks need at least one subarray with at least one row",
            ));
        }
        if self.geometry.columns == 0 || self.geometry.column_bytes == 0 {
            return Err(SimError::invalid(
                "geometry",
                "rows need at least one column of at least one byte",
            ));
        }
        self.timing
            .validate()
            .map_err(|why| SimError::InvalidConfig {
                what: "timing",
                why,
            })?;
        if self.mlp == 0 {
            return Err(SimError::invalid(
                "mlp",
                "cores need at least one outstanding request (mlp ≥ 1)",
            ));
        }
        if self.max_cycles == 0 {
            return Err(SimError::invalid(
                "max_cycles",
                "the cycle limit must be positive",
            ));
        }
        if self.raaimt_override == Some(0) {
            return Err(SimError::invalid(
                "raaimt_override",
                "RAAIMT must be ≥ 1 (use None to defer to the mitigation)",
            ));
        }
        if self.watchdog_window > 0 && self.watchdog_window >= self.max_cycles {
            return Err(SimError::invalid(
                "watchdog_window",
                format!(
                    "window ({}) must be below max_cycles ({}) to ever fire; \
                     use 0 to disable the watchdog",
                    self.watchdog_window, self.max_cycles
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for c in [
            SystemConfig::ddr4_actual_system(),
            SystemConfig::ddr5_sim(),
            SystemConfig::tiny(),
        ] {
            assert!(c.timing.validate().is_ok());
            assert!(c.capacity_bytes() > 0);
            assert!(c.mlp > 0);
        }
    }

    #[test]
    fn tiny_is_actually_tiny() {
        assert!(SystemConfig::tiny().capacity_bytes() < (1 << 20));
    }
}
