//! The core front-end: a simple out-of-order-like request injector.
//!
//! Each core owns one [`RequestStream`] and models the two properties that
//! make CPUs sensitive to memory performance: a bounded memory-level
//! parallelism window (`mlp` outstanding misses) and compute gaps between
//! requests. Throughput (requests completed per cycle) is the per-core
//! performance proxy the weighted-speedup metrics are built on.

use shadow_sim::time::Cycle;
use shadow_workloads::{Request, RequestStream};

/// One simulated core.
#[derive(Debug)]
pub struct CpuCore {
    stream: Box<dyn RequestStream>,
    name: String,
    mlp: usize,
    outstanding: usize,
    /// Cycle at which the staged request becomes eligible.
    ready_at: Cycle,
    /// The next request, already drawn from the stream.
    staged: Option<Request>,
    completed: u64,
    issued: u64,
}

impl CpuCore {
    /// Creates a core with an `mlp`-deep miss window.
    ///
    /// # Panics
    ///
    /// Panics if `mlp == 0`.
    pub fn new(mut stream: Box<dyn RequestStream>, mlp: usize) -> Self {
        assert!(mlp > 0, "cores need at least one outstanding request");
        let name = stream.name().to_string();
        let first = stream.next_request();
        CpuCore {
            stream,
            name,
            mlp,
            outstanding: 0,
            ready_at: first.gap_cycles,
            staged: Some(first),
            completed: 0,
            issued: 0,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Whether the core can inject a request at `now`.
    pub fn can_issue(&self, now: Cycle) -> bool {
        self.outstanding < self.mlp && self.staged.is_some() && now >= self.ready_at
    }

    /// The cycle at which the core next becomes eligible (if not stalled on
    /// MLP).
    pub fn next_eligible(&self) -> Option<Cycle> {
        if self.outstanding < self.mlp && self.staged.is_some() {
            Some(self.ready_at)
        } else {
            None
        }
    }

    /// Takes the staged request for injection and stages the next one.
    ///
    /// # Panics
    ///
    /// Panics if [`can_issue`](CpuCore::can_issue) is false.
    pub fn issue(&mut self, now: Cycle) -> Request {
        assert!(self.can_issue(now), "core not ready");
        let req = self.staged.take().expect("staged request present");
        self.outstanding += 1;
        self.issued += 1;
        let next = self.stream.next_request();
        self.ready_at = now + next.gap_cycles;
        self.staged = Some(next);
        req
    }

    /// Signals completion of one in-flight request.
    pub fn complete(&mut self) {
        debug_assert!(self.outstanding > 0, "completion with nothing outstanding");
        self.outstanding -= 1;
        self.completed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_workloads::RandomStream;

    fn core(mlp: usize) -> CpuCore {
        CpuCore::new(Box::new(RandomStream::new(1 << 20, 1)), mlp)
    }

    #[test]
    fn issues_up_to_mlp() {
        let mut c = core(3);
        for _ in 0..3 {
            assert!(c.can_issue(0));
            c.issue(0);
        }
        assert!(!c.can_issue(0), "exceeded MLP window");
        assert_eq!(c.issued(), 3);
    }

    #[test]
    fn completion_reopens_window() {
        let mut c = core(1);
        c.issue(0);
        assert!(!c.can_issue(0));
        c.complete();
        assert!(c.can_issue(0));
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn gaps_delay_eligibility() {
        // ProfileStream with big gaps: use a stream wrapper via RandomStream
        // which has zero gaps — so eligibility is immediate.
        let c = core(2);
        assert_eq!(c.next_eligible(), Some(0));
    }

    #[test]
    fn name_comes_from_stream() {
        assert_eq!(core(1).name(), "random-stream");
    }

    #[test]
    #[should_panic]
    fn zero_mlp_rejected() {
        let _ = core(0);
    }

    #[test]
    #[should_panic]
    fn premature_issue_panics() {
        let mut c = core(1);
        c.issue(0);
        c.issue(0);
    }
}
