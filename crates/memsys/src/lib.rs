//! # shadow-memsys
//!
//! The full-system memory simulator: multi-core front-end, FR-FCFS memory
//! controller, JEDEC refresh + RFM engines, pluggable Row Hammer
//! mitigation, and the disturbance fault model — everything Figures 8–12 of
//! the paper are measured on.
//!
//! Data flow per simulated memory request:
//!
//! ```text
//!  CpuCore ──(PA)──► AddressMapper ──(bank, PA row)──► per-bank queue
//!      ▲                                                    │ FR-FCFS
//!      │ completion                                         ▼
//!      └──────────── DramDevice ◄─(ACT w/ DA row)── Mitigation::translate
//!                        │                                  │
//!                        └── HammerLedger (disturbance, DA space)
//! ```
//!
//! RFM follows JEDEC DDR5: per-bank RAA counters in the controller trigger
//! an RFM once RAAIMT activations accumulate; the mitigation consumes the
//! tRFM slack (SHADOW shuffles, PARFM/Mithril TRR). Auto-refresh drains a
//! rank and blocks it for tRFC every tREFI (halved under DRR). BlockHammer
//! delays ACTs; RRS blocks whole channels during swaps. Every mitigating
//! action is applied to the same [`HammerLedger`](shadow_rh::HammerLedger)
//! the attacker hits, so protection and performance come from one mechanism.
//!
//! ## Example
//!
//! ```
//! use shadow_memsys::{MemSystem, SystemConfig};
//! use shadow_mitigations::NoMitigation;
//! use shadow_workloads::{ProfileStream, AppProfile};
//!
//! let cfg = SystemConfig::tiny();
//! let streams: Vec<Box<dyn shadow_workloads::RequestStream>> = vec![
//!     Box::new(ProfileStream::new(
//!         AppProfile::spec_high()[0],
//!         cfg.capacity_bytes().max(1 << 20),
//!         1,
//!     )),
//! ];
//! let mut sys = MemSystem::new(cfg, streams, Box::new(NoMitigation::new()));
//! let report = sys.run();
//! assert!(report.total_completed() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod active;
pub mod attacker;
pub mod config;
pub mod cpu;
pub mod error;
pub mod report;
mod shard;
pub mod system;

pub use attacker::AttackerCore;
pub use config::{PagePolicy, SystemConfig};
pub use error::{BankStall, SimError, StallKind, StallSnapshot};
pub use report::SimReport;
pub use system::MemSystem;
