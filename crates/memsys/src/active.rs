//! [`ActiveBanks`]: the scheduler's dense bank worklist.
//!
//! A system-scale configuration carries hundreds of banks, but at any
//! instant only the handful with queued requests, a pending RFM, or a row
//! left open under the closed-page policy can accept a command. The
//! scheduling pass and the next-event search therefore iterate this bitmask
//! instead of `0..total_banks`, turning both from O(banks) into
//! O(active banks) per pass.
//!
//! Iteration order is **ascending bank index** — the same order as the
//! original full scan. That ordering is load-bearing: banks on one channel
//! share a command bus, so which bank wins a cycle depends on visit order,
//! and changing it would change simulated outcomes.

/// A set of bank indices backed by a `u64` bitmask per 64 banks.
#[derive(Debug, Clone)]
pub struct ActiveBanks {
    words: Vec<u64>,
    banks: usize,
}

impl ActiveBanks {
    /// An empty set over a universe of `banks` banks.
    pub fn new(banks: usize) -> Self {
        ActiveBanks {
            words: vec![0; banks.div_ceil(64)],
            banks,
        }
    }

    /// Marks every bank in the universe active, degrading the next pass to
    /// the full O(banks) scan. Reference-engine use only (see
    /// `SystemConfig::force_full_scan`).
    pub fn insert_all(&mut self) {
        for (w, word) in self.words.iter_mut().enumerate() {
            let banks_in_word = self.banks.saturating_sub(w * 64).min(64);
            *word = if banks_in_word == 64 {
                u64::MAX
            } else {
                (1u64 << banks_in_word) - 1
            };
        }
    }

    /// Number of 64-bank words (for snapshot iteration).
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// The `w`-th word, covering banks `64*w ..= 64*w + 63`.
    ///
    /// The scheduler iterates a *copy* of each word while it mutates the
    /// set, so a bank deactivating itself mid-pass cannot corrupt the walk.
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Marks `bank` active. Idempotent.
    pub fn insert(&mut self, bank: usize) {
        self.words[bank / 64] |= 1 << (bank % 64);
    }

    /// Marks `bank` inactive. Idempotent.
    pub fn remove(&mut self, bank: usize) {
        self.words[bank / 64] &= !(1 << (bank % 64));
    }

    /// Whether `bank` is active.
    pub fn contains(&self, bank: usize) -> bool {
        (self.words[bank / 64] >> (bank % 64)) & 1 == 1
    }

    /// Active banks in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let s = ActiveBanks::new(130);
        assert_eq!(s.words(), 3);
        assert!(s.iter().next().is_none());
        assert!(!s.contains(0));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveBanks::new(128);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(127);
        assert!(s.contains(63) && s.contains(64));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 127]);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = ActiveBanks::new(200);
        for b in [199, 3, 65, 64, 0, 130] {
            s.insert(b);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 65, 130, 199]);
    }

    #[test]
    fn idempotent_ops() {
        let mut s = ActiveBanks::new(64);
        s.insert(5);
        s.insert(5);
        assert_eq!(s.iter().count(), 1);
        s.remove(5);
        s.remove(5);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_all_covers_exactly_the_universe() {
        let mut s = ActiveBanks::new(130);
        s.insert_all();
        assert_eq!(s.iter().count(), 130);
        assert_eq!(s.iter().last(), Some(129));
        let mut full = ActiveBanks::new(64);
        full.insert_all();
        assert_eq!(full.word(0), u64::MAX);
    }

    #[test]
    fn word_snapshot_survives_mutation() {
        let mut s = ActiveBanks::new(64);
        s.insert(1);
        s.insert(7);
        let snap = s.word(0);
        s.remove(7);
        assert_eq!(snap.count_ones(), 2, "snapshot is a copy");
        assert_eq!(s.word(0).count_ones(), 1);
    }
}
