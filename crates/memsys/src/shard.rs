//! [`ChannelShard`]: one DRAM channel's slice of the memory controller.
//!
//! DRAM channels share no timing state, and — after the per-bank RNG
//! substream rework in `shadow-mitigations` — no mitigation state either.
//! Everything the scheduler owns per channel (bank queues, Row Hammer
//! ledgers, RAA counters, the frontier memo, the channel's
//! [`ChannelLane`]) therefore lives in a [`ChannelShard`] that can step one
//! scheduling pass independently of its siblings.
//!
//! The serial engine iterates shards in ascending channel order on one
//! thread; the sharded engine runs the *same* shard code on persistent
//! worker threads, synchronizing at every pass. Either way the coordinator
//! (`crate::system::MemSystem`) merges each pass's results in fixed channel
//! order, so the two modes produce bit-identical reports and command
//! traces.
//!
//! The merge stays cheap because of a proven invariant: **a channel issues
//! at most one command per cycle.** Every issue path checks the channel's
//! command-bus claim (`cmd_ready <= now`) and issuing re-claims the bus for
//! the rest of the cycle, so a pass returns at most one command and at most
//! one CAS completion per shard — a tiny fixed-size [`ShardReply`], not a
//! buffer.
//!
//! Bank indices inside a shard are channel-local (`0..banks`); the
//! mitigation may be the *whole* scheme (serial mode — indices offset by
//! `moff`, the shard's global bank base) or a per-channel piece from
//! [`Mitigation::split_channels`] (sharded mode — `moff == 0`).
//!
//! # Scheduling engines
//!
//! The shard runs one of three bit-identical engines ([`EngineMode`]):
//! the full-scan reference, the PR3 frontier bitmask walk, and the default
//! **event calendar**. The calendar splits the active set into two
//! disjoint pools:
//!
//!  - `pending` — banks that need per-pass examination (fresh admissions,
//!    invalidated memos, armed mitigation consults, a claimed command
//!    bus);
//!  - the [`EventCalendar`] — banks whose memoized frontier
//!    ([`FrontierSlot::raw`]) is valid, lies in the future, and has no
//!    consult armed; each holds one heap entry keyed at that frontier.
//!
//! The **lazy-invalidation contract** that makes discarding stale heap
//! entries on pop safe: every mutation that can move a bank's frontier
//! *earlier* or arm a consult (admission, the refresh engine's urgent PRE,
//! any command to the bank itself, a mitigation consult) explicitly moves
//! the bank back to `pending`; the cross-bank couplings that are *not*
//! routed (a same-rank ACT's tRRD/tFAW, a channel CAS's tCCD/bus/tWTR, a
//! REF's rank block) only ever move frontiers **later**. A live heap entry
//! is therefore at worst *stale-early*: popping it visits the bank at or
//! before its true frontier, where `schedule_bank` provably has no side
//! effect (every issue path re-checks lane timings, and a consult can only
//! have been armed through a routed path), and the bank is re-parked. Both
//! `next_min` (pop-validate: the earliest live entry whose memo is still
//! valid IS the exact heap minimum) and the pass (visit only banks whose
//! event fired at `now`, merged with `pending` in ascending bank order)
//! come off the O(active banks) walk.
//!
//! # Resolved entries
//!
//! On top of the wake-time calendar, the default engine memoizes the
//! scheduling *decision* itself ([`Resolved`], carried in the bank's
//! [`FrontierSlot`]): branch selection — RFM drain, FR-FCFS row hit, row
//! conflict, head activate — is a pure function of exactly the state the
//! slot's seq stamps already pin, so a visit whose stamps validate can
//! issue the cached decision directly instead of re-running the
//! `schedule_bank` decision tree. Gate verdicts are never cached: the bus
//! claim, `block_until`, the hoisted rank gate, per-bank ABO recovery
//! debt, and the decision's own lane-timing guard are re-read live at
//! every consume, so refresh urgency and ABO debt transitions defeat the
//! cache with no extra counter. A run of queued hits to the open row
//! streams as a **CAS burst**: each beat's issue writes the bank's next
//! resolved decision straight into the slot (stamped with the post-issue
//! counters — byte-identical to what a fresh derivation at the next visit
//! would produce, since RD/WR never close the row and the pop kept the
//! row index exact), so the burst proceeds at tCCD cadence with O(1) work
//! per beat and a single arbitration for the whole run. Any foreign
//! command, admission, or consult in the window bumps a pinned counter
//! and the next beat falls back to full re-arbitration.
//! `SystemConfig::force_unresolved_calendar` defeats both paths (the
//! eighth differential-fuzzer variant); debug builds additionally
//! re-derive every consumed decision and assert it matches.

use std::collections::{HashMap, VecDeque};

use shadow_dram::command::DramCommand;
use shadow_dram::geometry::BankId;
use shadow_dram::lane::ChannelLane;
use shadow_dram::rank::RankState;
use shadow_dram::rfm::RaaCounters;
use shadow_dram::timing::TimingParams;
use shadow_mitigations::{AboScope, AboSpec, AnyMitigation, Mitigation};
use shadow_rh::HammerLedger;
use shadow_sim::calendar::EventCalendar;
use shadow_sim::profiler::{Phase, PhaseProfile, PhaseTimer};
use shadow_sim::stats::Histogram;
use shadow_sim::time::Cycle;

use crate::active::ActiveBanks;
use crate::config::PagePolicy;
use crate::error::BankStall;

/// Which scheduling engine the shard runs. Simulated outcomes are
/// bit-identical across all three (pinned by the determinism suite and
/// the conformance fuzzer); they differ only in how much work each
/// pass/`next_min` does. Resolved from `SystemConfig::force_full_scan` /
/// `force_frontier_walk` by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EngineMode {
    /// Reference: re-activate every bank and recompute every frontier,
    /// the original full O(total banks) scan.
    FullScan,
    /// The PR3 fast path: active-bank bitmask walk gated by the frontier
    /// memo.
    FrontierWalk,
    /// Default: incremental event calendar over the frontier memo (see
    /// the module docs).
    Calendar,
}

/// Sentinel core index for posted writes (no completion to deliver at CAS).
pub(crate) const POSTED: usize = usize::MAX;

/// Sentinel remap epoch marking a translation cache as unfilled. Real
/// epochs start at 0 and bump once per remap, so `u64::MAX` is unreachable.
pub(crate) const NO_EPOCH: u64 = u64::MAX;

/// A request waiting in a bank queue.
#[derive(Debug, Clone)]
pub(crate) struct QueuedReq {
    pub core: usize,
    pub pa_row: u32,
    pub write: bool,
    /// Cycle the request entered the controller (latency accounting).
    pub enqueued_at: Cycle,
    /// Earliest cycle the ACT may issue (throttling delay applied).
    pub ready_at: Cycle,
    /// Whether the mitigation has been consulted for this request's ACT.
    pub act_charged: bool,
    /// Per-bank admission order, assigned by [`ChannelShard::admit`]
    /// (constructors pass a placeholder `0`). Strictly increasing along
    /// the queue — admissions only `push_back` — which is what lets the
    /// row index recover a queue position from a seq number by binary
    /// search, and makes "front of a row's seq bucket" the FR-FCFS oldest
    /// hit.
    pub seq: u64,
    /// The translated DA row, valid while the bank sits at `cached_epoch`.
    pub cached_da: u32,
    /// The bank's remap epoch when `cached_da` was computed ([`NO_EPOCH`]
    /// until first use — admission happens on the coordinator, which in
    /// sharded mode has no mitigation to consult, so translation is
    /// deferred to the owning shard; `Mitigation::translate` is a pure
    /// lookup, so the value is identical either way).
    pub cached_epoch: u64,
}

impl QueuedReq {
    /// The request's DA row, re-translating only if the bank's remap
    /// `epoch` has moved since the cached value was computed.
    ///
    /// `Mitigation::translate` is contractually a pure lookup, so the
    /// cached value is exact — this is what turns the FR-FCFS row-hit scan
    /// from a translation per request per pass into a field compare.
    fn da(&mut self, mit_bank: usize, epoch: u64, mitigation: &mut AnyMitigation) -> u32 {
        if self.cached_epoch != epoch {
            self.cached_da = mitigation.translate(mit_bank, self.pa_row);
            self.cached_epoch = epoch;
        }
        self.cached_da
    }
}

/// Per-bank device-row index over the bank's queue: DA row → the seq
/// numbers of the queued requests targeting it, in queue (= seq) order.
/// Turns the FR-FCFS open-row hit scan — a linear walk translating every
/// queued request per bank visit — into one hash probe plus a binary
/// search for the hit's queue position.
///
/// Consistency is keyed on the bank's remap epoch, exactly like the
/// per-request translation cache: a map built at epoch `e` is exact while
/// the mitigation reports `e` (translate is contractually pure), and a
/// remap bump ages it out by key mismatch on the next lookup. Admissions
/// mark it dirty wholesale ([`NO_EPOCH`]) — translation is deferred to
/// the owning shard, so the admitting coordinator cannot extend the map —
/// and the CAS dequeue path pops the served seq from its bucket. The
/// `force_linear_frfcfs` reference mode never builds the index, keeping
/// the original scan alive for the differential fuzzer's seventh leg.
#[derive(Debug)]
struct RowIndex {
    /// The remap epoch the map reflects ([`NO_EPOCH`] = dirty).
    epoch: u64,
    map: HashMap<u32, VecDeque<u64>>,
    /// Retired seq buckets, kept for reuse: rebuilds and bucket drains
    /// would otherwise free and reallocate a `VecDeque` per distinct row
    /// per admission wave — a steady allocator drumbeat across the ~2.3M
    /// passes of a dense sweep. Capacity-only state; never observable.
    pool: Vec<VecDeque<u64>>,
}

impl RowIndex {
    fn new() -> Self {
        RowIndex {
            epoch: NO_EPOCH,
            map: HashMap::new(),
            pool: Vec::new(),
        }
    }

    /// Empties the map, parking every bucket's allocation in the pool.
    fn clear(&mut self) {
        for (_, mut bucket) in self.map.drain() {
            bucket.clear();
            self.pool.push(bucket);
        }
    }
}

/// A memoized per-bank frontier time, shared by [`ChannelShard::next_min`]
/// (skip recomputing a still-valid bank contribution) and the scheduling
/// pass (skip the whole `schedule_bank` decision tree for a bank that
/// provably cannot accept a command at `now`).
///
/// `raw` is the bank's earliest-issue cycle computed *now-independently*
/// (the lane's `earliest_*` queries clamp to `now` and are otherwise pure
/// functions of committed state, so they are evaluated at `now = 0` and
/// clamped by the caller — the final `max(now + 1)` absorbs any sub-`now`
/// value exactly as the unclamped scan did).
///
/// Validity is scoped to exactly the committed state the memoized value
/// read. Branch selection (RFM pending, open row, row hit, head readiness)
/// is a function of the bank's own command history and scheduler
/// bookkeeping alone, so every slot is pinned by `bank_cmd_seq` (bumped per
/// command to this bank — a rank's REF bumps every bank it blocks) and
/// `bank_seq` (command-free scheduler mutations: admissions, mitigation
/// consults). On top of that, `scope` records the widest cross-bank
/// coupling the lane queries behind the branch actually read, and
/// `coupled_seq` pins that coupling:
///
///  - [`FrontierScope::Bank`] — a PRE frontier (`earliest_pre` reads only
///    the bank's own timers), nothing further to pin;
///  - [`FrontierScope::Rank`] — an ACT frontier adds the rank's
///    tRRD/tFAW/refresh-recovery window, mutated only by same-rank ACTs
///    (each bumps the shard's `rank_act_seq`);
///  - [`FrontierScope::Channel`] — a RD/WR frontier adds the channel CAS
///    coupling (tCCD spacing, data-bus occupancy, and the rank's tWTR, all
///    mutated only by RD/WR, each of which bumps the shard's `cas_seq`; a
///    rank's banks share one channel, so the channel counter covers tWTR
///    too).
///
/// A PRE elsewhere on the channel, or a CAS to another rank's bank, no
/// longer invalidates an ACT frontier — that is the point: FR-FCFS read
/// storms leave closed banks' memos intact.
///
/// `consult_pending` records whether, at compute time, the bank had a
/// closed row and an un-`act_charged` head — the one `schedule_bank` path
/// with a side effect (the per-request mitigation consult) that fires even
/// when no command issues. The scheduling pass never skips such a bank, so
/// the consult happens at exactly the cycle it always did. The flag is
/// stable while the slot is valid: any open-row change, head removal, or
/// `needs_rfm` flip comes from a command to this bank (`bank_cmd_seq`),
/// and charging the head or admitting to an empty queue bumps `bank_seq`.
#[derive(Debug, Clone, Copy)]
struct FrontierSlot {
    bank_cmd_seq: u64,
    bank_seq: u64,
    /// The rank or channel counter captured at compute time (`scope`
    /// decides which; unused for bank-local frontiers).
    coupled_seq: u64,
    raw: Cycle,
    /// The bank-scoped part of `raw` alone: the bank's own timers plus
    /// head readiness, none of the rank/channel coupling. Because the
    /// lane's coupled state enters every `earliest_*` as a floor —
    /// `raw == max(intrinsic, floor(scope))`, an identity `refresh_slot`
    /// asserts — a slot whose bank-scoped counters still match can be
    /// revalidated in O(1) by re-reading just the floor
    /// ([`ChannelShard::revalidate_coupled`]), instead of re-running the
    /// branch selection and its queue scans.
    intrinsic: Cycle,
    scope: FrontierScope,
    consult_pending: bool,
    /// The memoized scheduling decision (see [`Resolved`]); exactly as
    /// valid as the slot itself, and additionally survives
    /// [`ChannelShard::revalidate_coupled`] — coupled-only staleness never
    /// changes branch selection.
    resolved: Resolved,
}

/// The widest cross-bank state a memoized frontier read; see
/// [`FrontierSlot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrontierScope {
    Bank,
    Rank,
    Channel,
}

/// The scheduling *decision* memoized alongside a frontier: what
/// `schedule_bank`'s branch selection would issue for this bank, resolved
/// once and consumed on the visit where the frontier fires — the calendar
/// engine's resolved-entry fast path.
///
/// Soundness rides on exactly the [`FrontierSlot`] validity contract:
/// branch selection is a function of the bank's own command history and
/// scheduler bookkeeping (`bank_cmd_seq` / `bank_seq`), so a decision is
/// exact while those counters match, and coupled-only staleness (a
/// same-rank ACT, a channel CAS elsewhere) can move *when* the command may
/// issue but never *what* it is. The per-bank remap epoch is pinned too:
/// every mitigation call that can move a bank's epoch (`on_activate`,
/// `on_rfm`, `on_recovery_rfm`) happens inside a consult or a command to
/// that bank, each of which bumps a pinned counter — the [`Resolved::Cas`]
/// epoch stamp is defense-in-depth on top, and the consume path falls back
/// to the full decision tree on mismatch rather than trusting the cache.
///
/// What is *not* cached: gate verdicts. The bus claim, `block_until`, the
/// hoisted rank gate (`rank_closed` — refresh urgency and rank-scope ABO
/// debt), and per-bank ABO recovery debt are all re-read live at every
/// visit before a decision is consumed, so ABO debt transitions and
/// refresh urgency flips defeat the cache without needing a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    /// No decision cached: the slot predates the resolved-calendar path,
    /// the engine runs with `force_unresolved_calendar`, or the bank's
    /// branch is one the cache never captures (empty-queue eager PRE).
    None,
    /// Precharge the open row (RFM drain, or FR-FCFS row conflict).
    Pre,
    /// Issue the bank's pending RFM (row already closed).
    Rfm,
    /// Serve the FR-FCFS oldest open-row hit: the queued request `seq`,
    /// the open DA row its bucket is keyed by, both pinned at `epoch`.
    Cas { seq: u64, da: u32, epoch: u64 },
    /// Activate for the (already consulted) head request.
    Act,
}

impl FrontierSlot {
    const INVALID: FrontierSlot = FrontierSlot {
        bank_cmd_seq: u64::MAX,
        bank_seq: u64::MAX,
        coupled_seq: u64::MAX,
        raw: 0,
        intrinsic: 0,
        scope: FrontierScope::Bank,
        consult_pending: true,
        resolved: Resolved::None,
    };
}

/// What one shard did in one scheduling pass. Fixed size by the
/// one-command-per-channel-per-cycle invariant (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardReply {
    /// Whether the shard committed a command or consulted the mitigation.
    pub progressed: bool,
    /// The command this channel issued, tagged with the phase that issued
    /// it (`true` = refresh engine, `false` = scheduler). The coordinator
    /// replays all refresh-phase commands in channel order, then all
    /// scheduler-phase commands in channel order — exactly the serial
    /// engine's global refresh-loop-then-scheduling-scan order.
    pub cmd: Option<(bool, DramCommand)>,
    /// CAS completion to deliver: (data-done cycle, core index). `None` for
    /// posted writes (their completion was scheduled at admission).
    pub completion: Option<(Cycle, usize)>,
    /// Requests still queued in this shard after the pass (watchdog input).
    pub queued: usize,
}

/// One channel's scheduler slice. See the module docs.
#[derive(Debug)]
pub(crate) struct ChannelShard {
    /// Global id of this channel's first bank (channel-major flattening:
    /// channels own contiguous bank and rank ranges).
    bank_base: usize,
    /// Global flat index of this channel's first rank.
    rank_base: usize,
    ranks: usize,
    /// Banks per rank.
    bpr: usize,
    page_policy: PagePolicy,
    engine: EngineMode,
    /// FR-FCFS reference switch: scan queues linearly for open-row hits
    /// instead of consulting [`RowIndex`] (see
    /// `SystemConfig::force_linear_frfcfs`).
    linear_frfcfs: bool,
    /// Calendar engine's resolved-entry fast path: memoize scheduling
    /// *decisions* ([`Resolved`]) alongside frontiers and consume them on
    /// the firing visit, streaming CAS bursts beat-to-beat. `false` under
    /// `SystemConfig::force_unresolved_calendar` (the eighth fuzzer
    /// variant) and for the walk/scan reference engines.
    resolved: bool,
    /// Post-mitigation timing (tRCD extension, refresh multiplier applied).
    /// A copy of the device's set, fixed for the run.
    timing: TimingParams,
    /// The channel's device-timing state, moved in from the
    /// [`DramDevice`](shadow_dram::device::DramDevice) for the duration of
    /// a run and restored afterwards.
    pub lane: Option<ChannelLane>,
    queues: Vec<VecDeque<QueuedReq>>,
    /// One [`RowIndex`] per bank (unused in `linear_frfcfs` mode).
    row_index: Vec<RowIndex>,
    /// Per-bank next admission seq (see [`QueuedReq::seq`]).
    next_seq: Vec<u64>,
    pub ledgers: Vec<HammerLedger>,
    raa: Option<RaaCounters>,
    /// The mitigation's Alert Back-Off contract, captured once at system
    /// assembly ([`Mitigation::abo`] is required to be stable). `None` for
    /// non-PRAC schemes — every ABO branch below is dead then.
    abo: Option<AboSpec>,
    /// Per-local-rank outstanding RFMAB recovery commands (Rank scope).
    /// While any is non-zero the whole rank yields to the recovery drain.
    recovery_due_rank: Vec<u32>,
    /// Per-local-bank outstanding RFMSB recovery commands (Bank scope).
    recovery_due_bank: Vec<u32>,
    /// Per-pass hoisted rank gate: `true` while the rank's refresh drain
    /// is urgent or rank-scope ABO recovery debt is outstanding — the two
    /// rank-wide conditions `schedule_bank` must yield to. Recomputed once
    /// per pass (after the refresh and recovery phases, before engine
    /// dispatch); exact for the whole scan because the scheduling phase
    /// never issues the commands that move them, and the one mid-scan
    /// mutation that could (an ACT arming new recovery debt) also claims
    /// the command bus, behind which these values are never read.
    rank_closed: Vec<bool>,
    /// Per-local-rank count of bank visits short-circuited by the hoisted
    /// rank gate (walk/calendar engines). Diagnostic, merged into
    /// `SimReport::gate_rank_skips`.
    pub rank_gate_skips: Vec<u64>,
    /// Scheduling passes skipped wholesale by the hoisted command-bus gate
    /// (walk/calendar engines). Diagnostic, merged into
    /// `SimReport::gate_bus_skips`.
    pub bus_gate_skips: u64,
    /// ABO alerts asserted on this channel.
    pub abo_events: u64,
    /// Cycles spent inside recovery RFM commands (tRFM each).
    pub abo_recovery_cycles: Cycle,
    /// Banks the scheduling pass must visit (queued work, pending RFM, or a
    /// row left open under the closed-page policy). Channel-local indices.
    active: ActiveBanks,
    /// Calendar engine only: the subset of `active` needing per-pass
    /// examination. Disjoint from the calendar's live entries; together
    /// they cover `active` (see the module docs).
    pending: ActiveBanks,
    /// Calendar engine only: one live entry per parked bank, keyed at its
    /// memoized frontier.
    calendar: EventCalendar,
    /// Scratch for the pass's due-event pops (kept to avoid realloc).
    due: Vec<usize>,
    /// Calendar engine only: the last `next_min` result, reusable while
    /// `cache_clean` holds (every input is now-independent committed
    /// state, so the value cannot drift between passes that leave the
    /// shard untouched).
    cached_next: Cycle,
    /// Whether `cached_next` still reflects the shard: set by `next_min`,
    /// cleared by any admission or any pass that actually runs.
    cache_clean: bool,
    /// Whether the whole shard pass is provably a no-op while
    /// `cached_next > now`: no pending bank has a mitigation consult
    /// armed, and none needs the per-pass examination `next_min` does not
    /// model (Closed-policy eager PRE on an empty queue). Computed
    /// alongside `cached_next`.
    skip_ok: bool,
    /// Calendar engine only: min over the shard's ranks of the exact next
    /// cycle the refresh phase can act ([`refresh_wake`]
    /// (Self::refresh_wake) when `skip_ok`, the raw due deadline
    /// otherwise). Valid whenever `cache_clean` holds — every input (open
    /// rows, rank readiness, the bus claim, the deadline itself) mutates
    /// only inside a pass that runs, and a run pass dirties the cache.
    /// Lets the shard-skip gate test refresh relevance with one compare.
    refresh_wake: Cycle,
    /// The legacy-form next-event bound: the bank contributions plus the
    /// conservative refresh probe (a due rank contributes `now`, an undue
    /// one the next tREFI boundary) — the value the walk/scan engines
    /// return from `next_min`. The coordinator falls back to the min of
    /// these whenever *any* shard reports `!skip_ok`: a shard needing
    /// per-pass examination inherited its visit cadence from the global
    /// crawl, including the 1-cycle refresh pins of *other* shards, so the
    /// exact wake is only sound for the clock advance when every shard is
    /// provably skippable. Stale reads (cache-reuse path) are safe: the
    /// stored value never exceeds a fresh recompute, and the coordinator's
    /// `max(now + 1)` clamp makes any undershoot cadence-identical.
    legacy_next: Cycle,
    pub latency: Histogram,
    /// Cycle at which the channel's command bus is next usable.
    cmd_ready: Cycle,
    /// Mitigation-imposed blocking (RRS swaps).
    block_until: Cycle,
    pub blocked_cycles: Cycle,
    pub throttle_cycles: Cycle,
    /// Cycles in which this channel issued a command (≤ 1 per cycle).
    pub busy_cycles: u64,
    /// Requests currently queued across the shard's banks.
    queued: usize,
    /// Per-bank count of committed commands touching that bank's timers
    /// (frontier invalidation, bank scope).
    bank_cmd_seq: Vec<u64>,
    /// Per-local-rank ACT count (tRRD/tFAW coupling — frontier
    /// invalidation, rank scope).
    rank_act_seq: Vec<u64>,
    /// Channel CAS count (tCCD/bus/tWTR coupling — frontier invalidation,
    /// channel scope).
    cas_seq: u64,
    /// Per-bank count of command-free scheduler mutations (admissions,
    /// mitigation consults — frontier invalidation).
    bank_seq: Vec<u64>,
    /// Memoized frontier contributions, one slot per bank.
    frontier: Vec<FrontierSlot>,
    /// The command issued by the pass in flight (see
    /// [`take_issued`](Self::take_issued)).
    issued: Option<DramCommand>,
    /// CAS completion produced by the pass in flight.
    pending_completion: Option<(Cycle, usize)>,
    /// Hot-path phase profile (`Some` only when requested and compiled in).
    pub profile: Option<PhaseProfile>,
}

impl ChannelShard {
    /// Builds the shard for the channel whose first bank is `bank_base`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bank_base: usize,
        rank_base: usize,
        banks: usize,
        ranks: usize,
        page_policy: PagePolicy,
        engine: EngineMode,
        linear_frfcfs: bool,
        resolved: bool,
        timing: TimingParams,
        ledgers: Vec<HammerLedger>,
        raa: Option<RaaCounters>,
        profile: bool,
    ) -> Self {
        debug_assert_eq!(ledgers.len(), banks);
        debug_assert_eq!(banks % ranks.max(1), 0);
        ChannelShard {
            bank_base,
            rank_base,
            ranks,
            bpr: banks / ranks.max(1),
            page_policy,
            engine,
            linear_frfcfs,
            resolved: resolved && engine == EngineMode::Calendar,
            timing,
            lane: None,
            queues: (0..banks).map(|_| VecDeque::new()).collect(),
            row_index: (0..banks).map(|_| RowIndex::new()).collect(),
            next_seq: vec![0; banks],
            ledgers,
            raa,
            abo: None,
            recovery_due_rank: vec![0; ranks],
            recovery_due_bank: vec![0; banks],
            rank_closed: vec![false; ranks],
            rank_gate_skips: vec![0; ranks],
            bus_gate_skips: 0,
            abo_events: 0,
            abo_recovery_cycles: 0,
            active: ActiveBanks::new(banks),
            pending: ActiveBanks::new(banks),
            calendar: EventCalendar::new(banks),
            due: Vec::new(),
            cached_next: 0,
            cache_clean: false,
            skip_ok: false,
            refresh_wake: 0,
            legacy_next: 0,
            // 16-cycle buckets out to 4096 cycles covers every DDR4/DDR5
            // latency of interest; beyond that the overflow bucket absorbs.
            latency: Histogram::new(16, 256),
            cmd_ready: 0,
            block_until: 0,
            blocked_cycles: 0,
            throttle_cycles: 0,
            busy_cycles: 0,
            queued: 0,
            bank_cmd_seq: vec![0; banks],
            rank_act_seq: vec![0; ranks],
            cas_seq: 0,
            bank_seq: vec![0; banks],
            frontier: vec![FrontierSlot::INVALID; banks],
            issued: None,
            pending_completion: None,
            profile: if profile && shadow_sim::profiler::profiler_compiled() {
                Some(PhaseProfile::new())
            } else {
                None
            },
        }
    }

    /// Global id of this shard's first bank.
    pub fn bank_base(&self) -> usize {
        self.bank_base
    }

    /// Arms the Alert Back-Off flow with the mitigation's contract.
    /// Called once at system assembly, before any traffic.
    pub fn set_abo(&mut self, abo: Option<AboSpec>) {
        self.abo = abo;
    }

    /// Whether any ABO recovery is outstanding on this channel.
    #[inline]
    fn recovery_pending(&self) -> bool {
        self.recovery_due_rank.iter().any(|&d| d > 0)
            || self.recovery_due_bank.iter().any(|&d| d > 0)
    }

    /// Requests queued across the shard's banks.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// The legacy-form next-event bound computed by the last
    /// [`next_min`](Self::next_min) call (see the [`legacy_next`]
    /// (field@Self::legacy_next) field). Read it right after `next_min`.
    pub fn legacy_next(&self) -> Cycle {
        self.legacy_next
    }

    /// Whether the last [`next_min`](Self::next_min) proved this shard
    /// needs no per-pass examination (no armed consult, no Closed-policy
    /// eager-PRE bank). When *any* shard reports false, the coordinator
    /// must advance the clock by the legacy bounds — see
    /// [`legacy_next`](field@Self::legacy_next).
    pub fn skip_ok(&self) -> bool {
        self.skip_ok
    }

    /// The global [`BankId`] of local bank `local`.
    #[inline]
    fn gbank(&self, local: usize) -> BankId {
        BankId((self.bank_base + local) as u32)
    }

    /// The global flat rank of local rank `lr`.
    #[inline]
    fn grank(&self, lr: usize) -> u32 {
        (self.rank_base + lr) as u32
    }

    #[inline]
    fn lane(&self) -> &ChannelLane {
        self.lane
            .as_ref()
            .expect("lane moved into shard for the run")
    }

    /// Admits one decoded request into local bank `local`'s queue.
    pub fn admit(&mut self, local: usize, mut req: QueuedReq) {
        req.seq = self.next_seq[local];
        self.next_seq[local] += 1;
        // Admission happens on the coordinator side with no mitigation in
        // reach (sharded mode), so the row index cannot be extended here —
        // mark it dirty; the next hit lookup rebuilds it in one pass over
        // the queue (amortized: one translation per queued request, the
        // same work a single linear scan did every visit).
        self.row_index[local].epoch = NO_EPOCH;
        self.queues[local].push_back(req);
        self.active.insert(local);
        // Admission can move the bank's frontier earlier (a row hit behind
        // a far-future ACT frontier) or arm a consult, so a parked bank
        // must come back to the examined pool.
        if self.engine == EngineMode::Calendar {
            self.calendar.invalidate(local);
            self.pending.insert(local);
            self.cache_clean = false;
        }
        self.touch_bank(local);
        self.queued += 1;
    }

    /// Commits one command: applies it on the lane, claims the channel's
    /// command bus for this cycle, and invalidates exactly the memoized
    /// frontier scopes whose state the command mutated (see
    /// [`FrontierSlot`]). Every command the shard emits goes through here,
    /// which is what makes the invalidation exhaustive on the command side:
    ///
    ///  - every command advances its own bank's timers → `bank_cmd_seq`
    ///    (REF blocks and rewinds every bank of its rank, so it bumps each
    ///    of them — that also covers the rank-level refresh-recovery window
    ///    `earliest_act` reads, since only same-rank banks read it);
    ///  - ACT additionally opens a rank tRRD/tFAW window → `rank_act_seq`;
    ///  - RD/WR additionally move the channel's tCCD/bus/tWTR state →
    ///    `cas_seq`.
    ///
    /// The bookkeeping half (stats/history/trace) happens on the
    /// coordinator via `DramDevice::record`, in canonical channel order.
    #[inline]
    fn issue(&mut self, cmd: DramCommand, now: Cycle) -> shadow_dram::device::IssueResult {
        debug_assert!(self.issued.is_none(), "two commands in one channel-cycle");
        let t = PhaseTimer::start(&mut self.profile);
        let res = self
            .lane
            .as_mut()
            .expect("lane present")
            .apply(cmd, now, &self.timing);
        t.stop(&mut self.profile, Phase::Device);
        self.cmd_ready = now + 1;
        self.busy_cycles += 1;
        self.issued = Some(cmd);
        match cmd {
            DramCommand::Act { bank, .. } => {
                let l = bank.0 as usize - self.bank_base;
                self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
                let lr = l / self.bpr;
                self.rank_act_seq[lr] = self.rank_act_seq[lr].wrapping_add(1);
            }
            DramCommand::Pre { bank } | DramCommand::Rfm { bank } | DramCommand::Rfmsb { bank } => {
                let l = bank.0 as usize - self.bank_base;
                self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
            }
            DramCommand::Rd { bank } | DramCommand::Wr { bank } => {
                let l = bank.0 as usize - self.bank_base;
                self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
                self.cas_seq = self.cas_seq.wrapping_add(1);
            }
            DramCommand::Ref { rank } | DramCommand::Rfmab { rank } => {
                let lr = rank as usize - self.rank_base;
                for b in 0..self.bpr {
                    let l = lr * self.bpr + b;
                    self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
                }
            }
        }
        res
    }

    /// Marks a command-free mutation of local bank `local`'s scheduler
    /// state (admission, mitigation consult), invalidating its memo.
    #[inline]
    fn touch_bank(&mut self, local: usize) {
        self.bank_seq[local] = self.bank_seq[local].wrapping_add(1);
    }

    /// Whether `local`'s memoized frontier still reflects current state:
    /// the bank-scoped counters must match, plus whichever coupled counter
    /// the slot's scope pinned (see [`FrontierSlot`]).
    #[inline]
    fn slot_valid(&self, local: usize) -> bool {
        let slot = &self.frontier[local];
        if slot.bank_cmd_seq != self.bank_cmd_seq[local] || slot.bank_seq != self.bank_seq[local] {
            return false;
        }
        match slot.scope {
            FrontierScope::Bank => true,
            FrontierScope::Rank => slot.coupled_seq == self.rank_act_seq[local / self.bpr],
            FrontierScope::Channel => slot.coupled_seq == self.cas_seq,
        }
    }

    /// The current value of the coupled invalidation counter `scope` pins.
    #[inline]
    fn coupled_seq(&self, scope: FrontierScope, local: usize) -> u64 {
        match scope {
            FrontierScope::Bank => 0,
            FrontierScope::Rank => self.rank_act_seq[local / self.bpr],
            FrontierScope::Channel => self.cas_seq,
        }
    }

    /// Applies a mitigation's refreshes/copies to the fault ledger.
    ///
    /// A targeted refresh is physically an ACT-PRE of the victim row, so it
    /// restores the row *and deposits one unit of disturbance on its own
    /// neighbours* — the side channel the Half-Double attack (paper ref
    /// [47]) exploits against TRR-based schemes. Modelling it as an
    /// activation makes that behaviour emergent rather than special-cased.
    fn apply_mitigation_work(
        ledger: &mut HammerLedger,
        refreshes: &[u32],
        copies: &[(u32, u32)],
        now: Cycle,
    ) {
        for &r in refreshes {
            ledger.on_activate(r, now);
        }
        for &(src, dst) in copies {
            // RowClone-style copy: both rows are activated (restored, and
            // their neighbours disturbed once).
            ledger.on_activate(src, now);
            ledger.on_activate(dst, now);
        }
    }

    fn take_issued(&mut self) -> Option<DramCommand> {
        self.issued.take()
    }

    /// One scheduling pass for this channel at `now`: drains `admits`
    /// (local bank, request) pairs, runs the refresh engine over the
    /// channel's ranks, then the FR-FCFS scheduling scan over its active
    /// banks. The mitigation sees bank index `moff + local` — the whole
    /// scheme with `moff = bank_base` (serial), or this channel's piece
    /// with `moff = 0` (sharded).
    pub fn pass(
        &mut self,
        now: Cycle,
        admits: &mut Vec<(usize, QueuedReq)>,
        mit: &mut AnyMitigation,
        moff: usize,
    ) -> ShardReply {
        // Shard-level skip (calendar engine): when the last `next_min`
        // proved every bank event lies beyond `now`, no consult is armed,
        // nothing needs per-pass examination (`skip_ok`), no admission
        // arrived, and the refresh phase provably cannot act before
        // `refresh_wake` (exact and fresh under `cache_clean`), the walk
        // engine's pass is provably a no-op: every bank visit would take
        // the frontier-gate skip and the refresh engine would not fire.
        // Skipping it wholesale is therefore exact, and the cache stays
        // clean for `next_min` to reuse.
        if self.engine == EngineMode::Calendar
            && admits.is_empty()
            && self.cache_clean
            && self.skip_ok
            && self.cached_next > now
            && self.refresh_wake > now
        {
            debug_assert!(self.pending_completion.is_none());
            return ShardReply {
                progressed: false,
                cmd: None,
                completion: None,
                queued: self.queued,
            };
        }
        self.cache_clean = false;
        let mut progressed = !admits.is_empty();
        for (local, req) in admits.drain(..) {
            self.admit(local, req);
        }

        // Refresh engine: one REF attempt per due rank. JEDEC permits
        // postponing up to 8 REFs, so refresh is opportunistic (fires when
        // the rank happens to be idle) until the debt hits the limit, at
        // which point the controller force-drains the rank.
        for lr in 0..self.ranks {
            let rank = self.grank(lr);
            if !self.lane().refresh_due(rank, now) {
                continue;
            }
            let urgent = self.lane().refresh_urgent(rank, now, &self.timing);
            let mut all_idle = true;
            for b in 0..self.bpr {
                let local = lr * self.bpr + b;
                let bank = self.gbank(local);
                if self.lane().open_row(bank).is_some() {
                    all_idle = false;
                    if !urgent {
                        continue; // postpone: let the open row keep serving
                    }
                    let t = self.lane().earliest_pre(bank, now);
                    if t <= now && self.cmd_ready <= now && self.block_until <= now {
                        self.issue(DramCommand::Pre { bank }, now);
                        // The one command to a bank outside its own visit:
                        // closing the row can arm a consult (head no longer
                        // a hit) or move the frontier to an earlier ACT, so
                        // a calendar-parked bank must be re-examined. Only
                        // active banks — an Open-policy bank deactivated
                        // with its row open must stay deactivated.
                        if self.engine == EngineMode::Calendar && self.active.contains(local) {
                            self.calendar.invalidate(local);
                            self.pending.insert(local);
                        }
                        progressed = true;
                    }
                }
            }
            // REF rides the same per-channel command bus as everything
            // else: without the claim below, a rank sharing its channel
            // could see a REF and a demand command in the same cycle.
            if all_idle
                && self.lane().earliest_ref(rank, now) <= now
                && self.cmd_ready <= now
                && self.block_until <= now
            {
                // Record which rows this REF covers before issuing.
                let ptr = self.lane().refresh_row_ptr(rank);
                let rows = self.lane().rows_per_ref(rank, &self.timing);
                self.issue(DramCommand::Ref { rank }, now);
                let t = PhaseTimer::start(&mut self.profile);
                for b in 0..self.bpr {
                    self.ledgers[lr * self.bpr + b].restore_block(ptr, rows);
                }
                t.stop(&mut self.profile, Phase::Ledger);
                // Note: JEDEC allows REF to credit RAA counters, but the
                // paper's evaluation (Eq. 1) derives RFM demand directly as
                // ACT count / RAAIMT, so no REF credit is applied here.
                progressed = true;
            }
        }
        // ABO recovery drain: an armed Alert Back-Off window has priority
        // over demand traffic (the scheduler yields every in-scope bank —
        // see `schedule_bank`) and rides the refresh-phase command slot.
        // RFMAB mirrors REF (all banks of the rank precharged, urgent PREs
        // drain open rows); RFMSB mirrors RFM (only its bank precharged).
        if self.issued.is_none() && self.recovery_pending() {
            self.recovery_drain(now, mit, moff, &mut progressed);
        }
        let refresh_cmd = self.take_issued();

        // Per-pass gate hoisting: refresh urgency and rank-scope ABO
        // recovery debt are pure functions of committed rank state, and
        // the scheduling phase below never issues the commands that move
        // them (REF and RFMAB both live in the phases above). Deriving
        // them once per rank here — instead of per bank visit inside
        // `schedule_bank` — is exact: the one mid-scan mutation that
        // matters (an ACT arming fresh recovery debt via `on_act_issued`)
        // also claims the command bus, behind which no later visit reads
        // these values (the bus gate precedes the rank gate).
        for lr in 0..self.ranks {
            let closed = self.recovery_due_rank[lr] > 0
                || self
                    .lane()
                    .refresh_urgent(self.grank(lr), now, &self.timing);
            self.rank_closed[lr] = closed;
        }

        // Per-channel command scheduling in ascending bank order (banks on
        // one channel share a command bus, so visit order is load-bearing).
        let sched = PhaseTimer::start(&mut self.profile);
        match self.engine {
            EngineMode::FullScan => {
                self.active.insert_all();
                self.pass_walk(now, mit, moff, &mut progressed);
            }
            EngineMode::FrontierWalk => self.pass_walk(now, mit, moff, &mut progressed),
            EngineMode::Calendar => self.pass_calendar(now, mit, moff, &mut progressed),
        }
        sched.stop(&mut self.profile, Phase::Schedule);
        let sched_cmd = self.take_issued();

        ShardReply {
            progressed,
            cmd: refresh_cmd
                .map(|c| (true, c))
                .or(sched_cmd.map(|c| (false, c))),
            completion: self.pending_completion.take(),
            queued: self.queued,
        }
    }

    /// One ABO-recovery attempt: issues at most one command (an urgent PRE
    /// draining an in-scope open row, or the recovery RFM itself). Rank
    /// scope drains ascending ranks with RFMAB — the device refreshes its
    /// flagged rows in every bank of the rank, so the mitigation is
    /// consulted once per bank, ascending — then Bank scope drains
    /// ascending banks with RFMSB. Runs identically under all three
    /// engines (it precedes engine dispatch and reads only committed
    /// state), which keeps the seven-variant differential bit-identical.
    fn recovery_drain(
        &mut self,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
        progressed: &mut bool,
    ) {
        if self.cmd_ready > now || self.block_until > now {
            return;
        }
        for lr in 0..self.ranks {
            if self.recovery_due_rank[lr] == 0 {
                continue;
            }
            let rank = self.grank(lr);
            let mut all_idle = true;
            for b in 0..self.bpr {
                let local = lr * self.bpr + b;
                let bank = self.gbank(local);
                if self.lane().open_row(bank).is_some() {
                    all_idle = false;
                    if self.lane().earliest_pre(bank, now) <= now {
                        self.issue(DramCommand::Pre { bank }, now);
                        // Closing the row can arm a consult or move the
                        // frontier earlier — route the bank back to the
                        // examined pool, exactly as the urgent-refresh PRE
                        // does (and like there, a deactivated Open-policy
                        // bank stays deactivated).
                        if self.engine == EngineMode::Calendar && self.active.contains(local) {
                            self.calendar.invalidate(local);
                            self.pending.insert(local);
                        }
                        *progressed = true;
                        return;
                    }
                }
            }
            if all_idle && self.lane().earliest_ref(rank, now) <= now {
                self.issue(DramCommand::Rfmab { rank }, now);
                self.recovery_due_rank[lr] -= 1;
                self.abo_recovery_cycles += self.timing.t_rfm;
                for b in 0..self.bpr {
                    let local = lr * self.bpr + b;
                    let t = PhaseTimer::start(&mut self.profile);
                    let action = mit.on_recovery_rfm(moff + local);
                    t.stop(&mut self.profile, Phase::Rng);
                    let t = PhaseTimer::start(&mut self.profile);
                    Self::apply_mitigation_work(
                        &mut self.ledgers[local],
                        &action.refreshes,
                        &action.copies,
                        now,
                    );
                    t.stop(&mut self.profile, Phase::Ledger);
                }
                *progressed = true;
                return;
            }
        }
        for local in 0..self.recovery_due_bank.len() {
            if self.recovery_due_bank[local] == 0 {
                continue;
            }
            let bank = self.gbank(local);
            if self.lane().open_row(bank).is_some() {
                if self.lane().earliest_pre(bank, now) <= now {
                    self.issue(DramCommand::Pre { bank }, now);
                    if self.engine == EngineMode::Calendar && self.active.contains(local) {
                        self.calendar.invalidate(local);
                        self.pending.insert(local);
                    }
                    *progressed = true;
                    return;
                }
                continue;
            }
            if self.lane().earliest_act(bank, now, &self.timing) <= now {
                self.issue(DramCommand::Rfmsb { bank }, now);
                self.recovery_due_bank[local] -= 1;
                self.abo_recovery_cycles += self.timing.t_rfm;
                let t = PhaseTimer::start(&mut self.profile);
                let action = mit.on_recovery_rfm(moff + local);
                t.stop(&mut self.profile, Phase::Rng);
                let t = PhaseTimer::start(&mut self.profile);
                Self::apply_mitigation_work(
                    &mut self.ledgers[local],
                    &action.refreshes,
                    &action.copies,
                    now,
                );
                t.stop(&mut self.profile, Phase::Ledger);
                *progressed = true;
                return;
            }
        }
    }

    /// The scan/walk engines' scheduling loop: visit every active bank in
    /// ascending order, gated (walk engine only) by the frontier memo.
    /// Iterating a snapshot of each bitmask word keeps the walk stable
    /// while banks deactivate themselves.
    fn pass_walk(
        &mut self,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
        progressed: &mut bool,
    ) {
        // Shard-global bus gate, hoisted (walk engine): with the command
        // bus claimed at pass entry the old per-bank gate skipped every
        // bank — no visits, no deactivations — so the whole pass is a
        // no-op. The reference engine (`force_full_scan`) keeps the
        // original visit-everything behaviour.
        if self.engine != EngineMode::FullScan && (self.cmd_ready > now || self.block_until > now) {
            self.bus_gate_skips += 1;
            return;
        }
        for w in 0..self.active.words() {
            let mut bits = self.active.word(w);
            while bits != 0 {
                let local = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // Frontier fast path: a bank whose memoized frontier lies
                // beyond `now` with no mitigation consult pending provably
                // makes no progress and has no side effect in
                // `schedule_bank` — skip the whole decision tree (queue
                // scans, lane timing math). Every skipped bank keeps a
                // non-empty queue or a pending RFM (see [`FrontierSlot`]),
                // so the deactivation check below is a no-op for it too.
                // The reference engine bypasses the gate entirely.
                if self.engine != EngineMode::FullScan {
                    let slot = self.frontier[local];
                    if !slot.consult_pending && slot.raw > now && self.slot_valid(local) {
                        continue;
                    }
                }
                // Hoisted rank gate: a closed rank's bank provably takes
                // `schedule_bank`'s refresh/recovery early-out with no
                // side effect — count the skip and fall through to the
                // deactivation check, exactly as the visit would have.
                let lr = local / self.bpr;
                if self.engine != EngineMode::FullScan
                    && (self.rank_closed[lr] || self.recovery_due_bank[local] > 0)
                {
                    self.rank_gate_skips[lr] += 1;
                } else if self.schedule_bank(local, now, mit, moff) {
                    *progressed = true;
                }
                if self.queues[local].is_empty()
                    && !self
                        .raa
                        .as_ref()
                        .is_some_and(|r| r.needs_rfm(BankId(local as u32)))
                    && (self.page_policy == PagePolicy::Open
                        || self.lane().open_row(self.gbank(local)).is_none())
                {
                    self.active.remove(local);
                }
                // Mid-pass bus claim (an issue above, or a mitigation
                // consult raising `block_until`): every remaining bank's
                // gate takes the same skip, so the rest of the walk is a
                // no-op — identical to the old per-bank `continue`.
                if self.engine != EngineMode::FullScan
                    && (self.cmd_ready > now || self.block_until > now)
                {
                    return;
                }
            }
        }
    }

    /// The calendar engine's scheduling loop: visit exactly the banks the
    /// walk engine would have visited — the banks whose calendar event
    /// fired at or before `now`, merged in ascending bank order with the
    /// `pending` pool (the two are disjoint by construction).
    fn pass_calendar(
        &mut self,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
        progressed: &mut bool,
    ) {
        // Shard-global bus gate, hoisted: with the command bus claimed at
        // pass entry the walk engine skips every bank (no visits, no
        // deactivations — see `pass_walk`'s entry gate), so the whole pass
        // is a no-op. Due heap entries stay put and pop once the bus
        // frees; completion-driven passes cost O(1) here. The per-bank
        // checks below stay load-bearing because `schedule_bank` re-claims
        // the bus mid-pass.
        if self.cmd_ready > now || self.block_until > now {
            self.bus_gate_skips += 1;
            return;
        }
        let cal = PhaseTimer::start(&mut self.profile);
        debug_assert!(self.due.is_empty());
        let mut due = std::mem::take(&mut self.due);
        while let Some((_, local)) = self.calendar.pop_due(now) {
            due.push(local);
        }
        cal.stop(&mut self.profile, Phase::Calendar);
        // pop_due drains in ascending (cycle, bank) order; re-sort by bank
        // alone for the bus-order merge with `pending`.
        due.sort_unstable();
        let mut di = 0;
        for w in 0..self.pending.words() {
            let mut bits = self.pending.word(w);
            while bits != 0 {
                let local = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                while di < due.len() && due[di] < local {
                    self.visit_fired(due[di], now, mit, moff, progressed);
                    di += 1;
                }
                debug_assert!(
                    di >= due.len() || due[di] != local,
                    "bank both pending and live in the calendar"
                );
                self.visit_pending(local, now, mit, moff, progressed);
            }
        }
        while di < due.len() {
            self.visit_fired(due[di], now, mit, moff, progressed);
            di += 1;
        }
        due.clear();
        self.due = due;
    }

    /// Visits a bank whose calendar event fired (its heap entry is already
    /// popped). A live fired entry is either exact (the walk engine would
    /// visit the bank at `now` too) or stale-early under the module's
    /// monotone-later contract (the visit is provably side-effect-free);
    /// either way the bank ends the visit in `pending`, re-parked, or
    /// deactivated — never silently dropped.
    fn visit_fired(
        &mut self,
        local: usize,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
        progressed: &mut bool,
    ) {
        if self.cmd_ready > now || self.block_until > now {
            // Bus claimed: the walk engine would skip and revisit next
            // pass; park the bank so it isn't lost.
            self.pending.insert(local);
            return;
        }
        // Stale-early pop: the entry fired at its old key but the bank's
        // true frontier has since moved later (an unrouted coupling).
        // Revalidate in O(1) and re-park instead of paying the provably
        // no-op `schedule_bank` the walk engine would perform.
        if !self.slot_valid(local) {
            let _ = self.revalidate_coupled(local);
        }
        let slot = self.frontier[local];
        if !slot.consult_pending && slot.raw > now && self.slot_valid(local) {
            if slot.raw > now + 1 {
                self.calendar.push(slot.raw, local);
            } else {
                self.pending.insert(local);
            }
            return;
        }
        // Hoisted rank gate (see `pass`): the visit would take
        // `schedule_bank`'s refresh/recovery early-out with no side
        // effect, so only the disposition below remains.
        let lr = local / self.bpr;
        if self.rank_closed[lr] || self.recovery_due_bank[local] > 0 {
            self.rank_gate_skips[lr] += 1;
        } else {
            let issued = match self.try_resolved(local, now, mit, moff) {
                Some(issued) => issued,
                None => self.schedule_bank(local, now, mit, moff),
            };
            if issued {
                *progressed = true;
            }
        }
        self.dispose(local);
    }

    /// Visits a bank from the `pending` pool, applying the walk engine's
    /// frontier gate: a provably-idle bank graduates to the calendar
    /// instead of being re-examined every pass.
    fn visit_pending(
        &mut self,
        local: usize,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
        progressed: &mut bool,
    ) {
        if self.cmd_ready > now || self.block_until > now {
            return; // stays pending — exactly the walk engine's skip
        }
        // A coupled-stale slot revalidates in O(1); if the fresh frontier
        // still lies beyond `now` the visit below would provably be a
        // side-effect-free no-op (the walk engine performs it anyway and
        // changes nothing), so taking the gate instead is exact.
        if !self.slot_valid(local) {
            let _ = self.revalidate_coupled(local);
        }
        let slot = self.frontier[local];
        if !slot.consult_pending && slot.raw > now && self.slot_valid(local) {
            // Only a genuinely *future* event is worth a heap entry: a
            // bank due next cycle would pop right back out, costing a
            // push + pop + sort where the pending bitmask walk is one
            // trailing_zeros. Near-term banks stay pending.
            if slot.raw > now + 1 {
                self.pending.remove(local);
                self.calendar.push(slot.raw, local);
            }
            return;
        }
        // Hoisted rank gate, as in `visit_fired`.
        let lr = local / self.bpr;
        if self.rank_closed[lr] || self.recovery_due_bank[local] > 0 {
            self.rank_gate_skips[lr] += 1;
        } else {
            let issued = match self.try_resolved(local, now, mit, moff) {
                Some(issued) => issued,
                None => self.schedule_bank(local, now, mit, moff),
            };
            if issued {
                *progressed = true;
            }
        }
        self.dispose(local);
    }

    /// Post-visit disposition (calendar engine): deactivate a bank with
    /// nothing left to do — the walk engine's deactivation check — else
    /// park it in `pending` (the next `next_min` graduates it back to the
    /// calendar once its memo revalidates).
    fn dispose(&mut self, local: usize) {
        if self.queues[local].is_empty()
            && !self
                .raa
                .as_ref()
                .is_some_and(|r| r.needs_rfm(BankId(local as u32)))
            && (self.page_policy == PagePolicy::Open
                || self.lane().open_row(self.gbank(local)).is_none())
        {
            self.active.remove(local);
            self.pending.remove(local);
        } else {
            self.pending.insert(local);
        }
    }

    /// Attempts one command for local bank `local` (the scheduling scan's
    /// per-bank step). Returns true if a command issued.
    ///
    /// One branch per visit on the profiler's presence, then dispatch to
    /// the monomorphized body: the profiler-off instantiation carries
    /// zero timer calls on the hot path.
    #[inline]
    fn schedule_bank(
        &mut self,
        local: usize,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
    ) -> bool {
        if self.profile.is_some() {
            self.schedule_bank_impl::<true>(local, now, mit, moff)
        } else {
            self.schedule_bank_impl::<false>(local, now, mit, moff)
        }
    }

    fn schedule_bank_impl<const PROF: bool>(
        &mut self,
        local: usize,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
    ) -> bool {
        let bank = self.gbank(local);
        let lbank = BankId(local as u32);
        let mit_bank = moff + local;
        if self.cmd_ready > now || self.block_until > now {
            return false;
        }
        // Rank gate, hoisted to one derivation per pass (see `pass`): an
        // urgent refresh drain has absolute priority on its rank, and an
        // armed ABO recovery window stops all in-scope demand traffic
        // until its RFMs drain — no in-scope ACT may issue while recovery
        // debt is outstanding (the oracle's zero-grace rule), and yielding
        // CAS/PRE too lets the recovery drain close rows on its own
        // schedule. Bank-scope recovery debt stays a live read (it is one
        // load, and per-bank anyway).
        if self.rank_closed[local / self.bpr] || self.recovery_due_bank[local] > 0 {
            return false;
        }

        // RFM has priority over new ACTs for this bank.
        if self.raa.as_ref().is_some_and(|raa| raa.needs_rfm(lbank)) {
            if self.lane().open_row(bank).is_some() {
                if self.lane().earliest_pre(bank, now) <= now {
                    self.issue(DramCommand::Pre { bank }, now);
                    return true;
                }
                return false;
            }
            if self.lane().earliest_act(bank, now, &self.timing) <= now {
                self.issue(DramCommand::Rfm { bank }, now);
                self.raa.as_mut().expect("raa exists").on_rfm(lbank);
                let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
                let action = mit.on_rfm(mit_bank);
                if PROF {
                    t.stop(&mut self.profile, Phase::Rng);
                }
                let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
                Self::apply_mitigation_work(
                    &mut self.ledgers[local],
                    &action.refreshes,
                    &action.copies,
                    now,
                );
                if PROF {
                    t.stop(&mut self.profile, Phase::Ledger);
                }
                if action.channel_block_ns > 0.0 {
                    let cycles = self.timing.clock.ns_to_cycles(action.channel_block_ns);
                    self.block_until = self.block_until.max(now + cycles);
                    self.blocked_cycles += cycles;
                }
                return true;
            }
            return false;
        }

        if self.queues[local].is_empty() {
            // Closed-page policy: precharge idle-open rows eagerly.
            if self.page_policy == PagePolicy::Closed
                && self.lane().open_row(bank).is_some()
                && self.lane().earliest_pre(bank, now) <= now
            {
                self.issue(DramCommand::Pre { bank }, now);
                return true;
            }
            return false;
        }

        // Open row: serve a row hit (FR-FCFS) if present. The row index
        // finds the oldest hit in O(1) expected — its seq buckets are in
        // queue order, so the bucket front is exactly the request the
        // linear reference scan's `position()` stops at.
        if let Some(open_da) = self.lane().open_row(bank) {
            let epoch = mit.remap_epoch(mit_bank);
            let tr = PhaseTimer::start_if::<PROF>(&mut self.profile);
            let hit_idx = if self.linear_frfcfs {
                self.queues[local]
                    .iter_mut()
                    .position(|r| r.da(mit_bank, epoch, mit) == open_da)
            } else {
                self.ensure_index(local, epoch, mit_bank, mit);
                self.row_index[local].map.get(&open_da).map(|bucket| {
                    let seq = *bucket.front().expect("row buckets are never left empty");
                    let idx = self.queues[local].partition_point(|r| r.seq < seq);
                    debug_assert_eq!(self.queues[local][idx].seq, seq, "row index out of sync");
                    idx
                })
            };
            if PROF {
                tr.stop(&mut self.profile, Phase::Translate);
            }
            if let Some(idx) = hit_idx {
                let write = self.queues[local][idx].write;
                let t = if write {
                    self.lane().earliest_wr(bank, now, &self.timing)
                } else {
                    self.lane().earliest_rd(bank, now, &self.timing)
                };
                if t <= now {
                    let req = self.queues[local].remove(idx).expect("index valid");
                    self.queued -= 1;
                    if self.row_index[local].epoch == epoch {
                        // Keep the still-current index exact: pop the
                        // served request's seq, dropping emptied buckets
                        // so `contains_key` stays a hit predicate.
                        let ridx = &mut self.row_index[local];
                        let bucket = ridx.map.get_mut(&open_da).expect("dequeued row is indexed");
                        let popped = bucket.pop_front();
                        debug_assert_eq!(popped, Some(req.seq), "row index out of sync");
                        if bucket.is_empty() {
                            if let Some(b) = ridx.map.remove(&open_da) {
                                ridx.pool.push(b);
                            }
                        }
                    }
                    let cmd = if write {
                        DramCommand::Wr { bank }
                    } else {
                        DramCommand::Rd { bank }
                    };
                    let res = self.issue(cmd, now);
                    let done = res.done_at.expect("CAS returns done");
                    self.latency.record(done - req.enqueued_at);
                    if req.core != POSTED {
                        debug_assert!(self.pending_completion.is_none());
                        self.pending_completion = Some((done, req.core));
                    }
                    return true;
                }
                return false;
            }
            // Conflict: close the row.
            if self.lane().earliest_pre(bank, now) <= now {
                self.issue(DramCommand::Pre { bank }, now);
                return true;
            }
            return false;
        }

        // Closed bank: activate for the head request, consulting the
        // mitigation once per request (throttle delay, inline TRR, swaps).
        if !self.queues[local].front().expect("non-empty").act_charged {
            let pa_row = self.queues[local].front().expect("head").pa_row;
            let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
            let resp = mit.on_activate(mit_bank, pa_row, now);
            if PROF {
                t.stop(&mut self.profile, Phase::Rng);
            }
            {
                let head = self.queues[local].front_mut().expect("head");
                head.act_charged = true;
                if resp.delay_cycles > 0 {
                    head.ready_at = now + resp.delay_cycles;
                }
            }
            // The consult can change head readiness (and mitigation state)
            // without committing a command.
            self.touch_bank(local);
            self.throttle_cycles += resp.delay_cycles;
            let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
            Self::apply_mitigation_work(
                &mut self.ledgers[local],
                &resp.refreshes,
                &resp.copies,
                now,
            );
            if PROF {
                t.stop(&mut self.profile, Phase::Ledger);
            }
            if resp.channel_block_ns > 0.0 {
                let cycles = self.timing.clock.ns_to_cycles(resp.channel_block_ns);
                self.block_until = self.block_until.max(now + cycles);
                self.blocked_cycles += cycles;
            }
        }
        let head_ready = self.queues[local].front().expect("head").ready_at;
        if head_ready > now || self.block_until > now {
            return false;
        }
        if self.lane().earliest_act(bank, now, &self.timing) <= now {
            let epoch = mit.remap_epoch(mit_bank);
            let tr = PhaseTimer::start_if::<PROF>(&mut self.profile);
            let (pa_row, da) = {
                let head = self.queues[local].front_mut().expect("head");
                (head.pa_row, head.da(mit_bank, epoch, mit))
            };
            if PROF {
                tr.stop(&mut self.profile, Phase::Translate);
            }
            self.issue(DramCommand::Act { bank, row: da }, now);
            let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
            self.ledgers[local].on_activate(da, now);
            if PROF {
                t.stop(&mut self.profile, Phase::Ledger);
            }
            if let Some(raa) = &mut self.raa {
                if mit.counts_toward_rfm(mit_bank, pa_row) {
                    raa.on_act(lbank);
                }
            }
            // PRAC-style per-row counters live in the DRAM rows: they see
            // every committed ACT (this is the only ACT-issue point), in
            // issue order, at the device (DA) row.
            if let Some(spec) = self.abo {
                if mit.on_act_issued(mit_bank, da) {
                    self.abo_events += 1;
                    match spec.scope {
                        AboScope::Rank => {
                            self.recovery_due_rank[local / self.bpr] += spec.rfms_per_alert;
                        }
                        AboScope::Bank => {
                            self.recovery_due_bank[local] += spec.rfms_per_alert;
                        }
                    }
                }
            }
            return true;
        }
        false
    }

    /// The resolved calendar's fast path: when the visited bank's memoized
    /// decision ([`FrontierSlot::resolved`]) is still pinned by its seq
    /// stamps, issue it directly — skipping `schedule_bank`'s branch
    /// re-selection (the open-row read, RAA probe, row-index probe, and
    /// dispatch). Returns `None` when the cache does not apply, in which
    /// case the caller falls back to the full decision tree.
    ///
    /// What stays live even here: the caller's bus/`block_until` gate and
    /// hoisted rank gate, the per-bank recovery-debt read, and the issue
    /// timing checks below — a decision says *what* to issue, never
    /// whether the gates or the lane allow it *now*.
    #[inline]
    fn try_resolved(
        &mut self,
        local: usize,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
    ) -> Option<bool> {
        if !self.resolved {
            return None;
        }
        let slot = self.frontier[local];
        if slot.resolved == Resolved::None
            || slot.consult_pending
            || slot.raw > now
            || !self.slot_valid(local)
        {
            return None;
        }
        // Fresh-derivation cross-check (debug builds, so every tier-1 test
        // exercises it on top of the differential fuzzer): the cached
        // decision must be exactly what branch selection concludes now.
        #[cfg(debug_assertions)]
        {
            let needs_rfm = self.needs_rfm(local);
            let fresh = self.bank_frontier_raw(local, needs_rfm, mit, moff).3;
            // The epoch stamp is excluded: wrappers like `Retranslate`
            // report a fresh epoch per *query* while the translation stays
            // pure, so two derivations of the same decision can carry
            // different stamps. Every use of the stamp re-checks against
            // the live `row_index` epoch anyway.
            let same = match (fresh, slot.resolved) {
                (
                    Resolved::Cas {
                        seq: fs, da: fd, ..
                    },
                    Resolved::Cas {
                        seq: cs, da: cd, ..
                    },
                ) => fs == cs && fd == cd,
                (f, c) => f == c,
            };
            debug_assert!(
                same,
                "resolved decision drifted from a fresh derivation (bank {local}): \
                 {fresh:?} vs {:?}",
                slot.resolved
            );
        }
        Some(if self.profile.is_some() {
            self.consume_resolved::<true>(local, slot.resolved, now, mit, moff)
        } else {
            self.consume_resolved::<false>(local, slot.resolved, now, mit, moff)
        })
    }

    /// Issues a memoized decision, replicating the matching
    /// `schedule_bank` issue path exactly (same timing guards, same side
    /// effects, same profiler phases). On a CAS with further queued hits
    /// to the same open row, streams the burst: the bank's *next* resolved
    /// decision is written straight into its slot, stamped with the
    /// post-issue counters — the next beat then validates in O(1) and
    /// issues at tCCD cadence with no re-arbitration (see the module
    /// docs).
    fn consume_resolved<const PROF: bool>(
        &mut self,
        local: usize,
        resolved: Resolved,
        now: Cycle,
        mit: &mut AnyMitigation,
        moff: usize,
    ) -> bool {
        let bank = self.gbank(local);
        let mit_bank = moff + local;
        match resolved {
            Resolved::None => unreachable!("caller filters unresolved slots"),
            Resolved::Pre => {
                // All of `schedule_bank`'s PRE branches (RFM drain, row
                // conflict) issue identically.
                if self.lane().earliest_pre(bank, now) <= now {
                    self.issue(DramCommand::Pre { bank }, now);
                    return true;
                }
                false
            }
            Resolved::Rfm => {
                if self.lane().earliest_act(bank, now, &self.timing) <= now {
                    self.issue(DramCommand::Rfm { bank }, now);
                    self.raa
                        .as_mut()
                        .expect("raa exists")
                        .on_rfm(BankId(local as u32));
                    let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
                    let action = mit.on_rfm(mit_bank);
                    if PROF {
                        t.stop(&mut self.profile, Phase::Rng);
                    }
                    let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
                    Self::apply_mitigation_work(
                        &mut self.ledgers[local],
                        &action.refreshes,
                        &action.copies,
                        now,
                    );
                    if PROF {
                        t.stop(&mut self.profile, Phase::Ledger);
                    }
                    if action.channel_block_ns > 0.0 {
                        let cycles = self.timing.clock.ns_to_cycles(action.channel_block_ns);
                        self.block_until = self.block_until.max(now + cycles);
                        self.blocked_cycles += cycles;
                    }
                    return true;
                }
                false
            }
            Resolved::Cas { seq, da, epoch } => {
                let idx = self.queues[local].partition_point(|r| r.seq < seq);
                debug_assert_eq!(self.queues[local][idx].seq, seq, "resolved seq out of sync");
                let write = self.queues[local][idx].write;
                // The memoized frontier is `min(rd, wr)` whatever the
                // hit's direction, so the slot can legitimately fire
                // before a write's tWTR/tCWL window clears — re-check the
                // *actual* direction's lane earliest, the exact guard the
                // full hit path applies, and decline without side effects.
                let t = if write {
                    self.lane().earliest_wr(bank, now, &self.timing)
                } else {
                    self.lane().earliest_rd(bank, now, &self.timing)
                };
                if t > now {
                    return false;
                }
                let req = self.queues[local].remove(idx).expect("index valid");
                self.queued -= 1;
                if self.row_index[local].epoch == epoch {
                    let ridx = &mut self.row_index[local];
                    let bucket = ridx.map.get_mut(&da).expect("dequeued row is indexed");
                    let popped = bucket.pop_front();
                    debug_assert_eq!(popped, Some(req.seq), "row index out of sync");
                    if bucket.is_empty() {
                        if let Some(b) = ridx.map.remove(&da) {
                            ridx.pool.push(b);
                        }
                    }
                }
                let cmd = if write {
                    DramCommand::Wr { bank }
                } else {
                    DramCommand::Rd { bank }
                };
                let res = self.issue(cmd, now);
                let done = res.done_at.expect("CAS returns done");
                self.latency.record(done - req.enqueued_at);
                if req.core != POSTED {
                    debug_assert!(self.pending_completion.is_none());
                    self.pending_completion = Some((done, req.core));
                }
                // CAS-burst streaming: the row is still open (RD/WR never
                // close it), the index is still exact (the pop above kept
                // it so), and no counter the slot pins can have moved
                // between here and the bank's next examination without
                // invalidating the stamps below. Writing the next beat's
                // decision now is therefore byte-identical to what
                // `refresh_slot` would derive at that examination — minus
                // its open-row read, index probe, and branch selection.
                if self.row_index[local].epoch == epoch {
                    if let Some(&next_seq) =
                        self.row_index[local].map.get(&da).and_then(|b| b.front())
                    {
                        let raw = self
                            .lane()
                            .earliest_rd(bank, 0, &self.timing)
                            .min(self.lane().earliest_wr(bank, 0, &self.timing));
                        let intrinsic = self.lane().cas_intrinsic(bank);
                        debug_assert_eq!(
                            raw,
                            intrinsic.max(self.slot_floor(FrontierScope::Channel, local))
                        );
                        self.frontier[local] = FrontierSlot {
                            bank_cmd_seq: self.bank_cmd_seq[local],
                            bank_seq: self.bank_seq[local],
                            coupled_seq: self.cas_seq,
                            raw,
                            intrinsic,
                            scope: FrontierScope::Channel,
                            consult_pending: false,
                            resolved: Resolved::Cas {
                                seq: next_seq,
                                da,
                                epoch,
                            },
                        };
                    }
                }
                true
            }
            Resolved::Act => {
                // The head is charged — `consult_pending` was false at
                // memo time and head charging bumps `bank_seq`.
                let head_ready = self.queues[local].front().expect("head").ready_at;
                if head_ready > now || self.block_until > now {
                    return false;
                }
                if self.lane().earliest_act(bank, now, &self.timing) <= now {
                    let epoch = mit.remap_epoch(mit_bank);
                    let tr = PhaseTimer::start_if::<PROF>(&mut self.profile);
                    let (pa_row, da) = {
                        let head = self.queues[local].front_mut().expect("head");
                        (head.pa_row, head.da(mit_bank, epoch, mit))
                    };
                    if PROF {
                        tr.stop(&mut self.profile, Phase::Translate);
                    }
                    self.issue(DramCommand::Act { bank, row: da }, now);
                    let t = PhaseTimer::start_if::<PROF>(&mut self.profile);
                    self.ledgers[local].on_activate(da, now);
                    if PROF {
                        t.stop(&mut self.profile, Phase::Ledger);
                    }
                    if let Some(raa) = &mut self.raa {
                        if mit.counts_toward_rfm(mit_bank, pa_row) {
                            raa.on_act(BankId(local as u32));
                        }
                    }
                    if let Some(spec) = self.abo {
                        if mit.on_act_issued(mit_bank, da) {
                            self.abo_events += 1;
                            match spec.scope {
                                AboScope::Rank => {
                                    self.recovery_due_rank[local / self.bpr] += spec.rfms_per_alert;
                                }
                                AboScope::Bank => {
                                    self.recovery_due_bank[local] += spec.rfms_per_alert;
                                }
                            }
                        }
                    }
                    return true;
                }
                false
            }
        }
    }

    /// Rebuilds local bank `local`'s row index unless it is already
    /// current for `epoch`: one pass over the queue in seq order, caching
    /// each request's translation exactly as the linear scan would (the
    /// per-request cache and the index share the epoch key, so neither
    /// can go stale without the other). Amortized cost: admissions and
    /// remap bumps each buy one rebuild, against an O(1) probe per bank
    /// visit afterwards.
    fn ensure_index(&mut self, local: usize, epoch: u64, mit_bank: usize, mit: &mut AnyMitigation) {
        if self.row_index[local].epoch == epoch {
            return;
        }
        let idx = &mut self.row_index[local];
        idx.clear();
        for r in self.queues[local].iter_mut() {
            let da = r.da(mit_bank, epoch, mit);
            match idx.map.entry(da) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push_back(r.seq),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let mut bucket = idx.pool.pop().unwrap_or_default();
                    bucket.push_back(r.seq);
                    e.insert(bucket);
                }
            }
        }
        idx.epoch = epoch;
    }

    /// The `now`-independent part of a bank's earliest-event time: every
    /// lane `earliest_*` is `now.max(raw)` with `raw` a pure function of
    /// committed state, so evaluating at `now = 0` yields `raw` itself. The
    /// caller re-applies the `now` bound; see [`FrontierSlot`] for why the
    /// difference never reaches the scheduler.
    ///
    /// Also returns the bank-scoped part of the value (see
    /// [`FrontierSlot::intrinsic`]), the widest cross-bank coupling the
    /// value read — which `earliest_*` family the taken branch consulted —
    /// so the memo can be pinned at exactly that scope, and the branch's
    /// [`Resolved`] decision: the branch selection performed here is
    /// byte-for-byte the one `schedule_bank` performs, so recording its
    /// outcome costs nothing beyond fishing the oldest hit's seq out of
    /// the probe the hit branch already pays for.
    fn bank_frontier_raw(
        &mut self,
        local: usize,
        needs_rfm: bool,
        mit: &mut AnyMitigation,
        moff: usize,
    ) -> (Cycle, Cycle, FrontierScope, Resolved) {
        let bank = self.gbank(local);
        if needs_rfm {
            if self.lane().open_row(bank).is_some() {
                let raw = self.lane().earliest_pre(bank, 0);
                (raw, raw, FrontierScope::Bank, Resolved::Pre)
            } else {
                (
                    self.lane().earliest_act(bank, 0, &self.timing),
                    self.lane().act_intrinsic(bank),
                    FrontierScope::Rank,
                    Resolved::Rfm,
                )
            }
        } else if let Some(open_da) = self.lane().open_row(bank) {
            let mit_bank = moff + local;
            let epoch = mit.remap_epoch(mit_bank);
            let tr = PhaseTimer::start(&mut self.profile);
            let hit_seq = if self.linear_frfcfs {
                self.queues[local]
                    .iter_mut()
                    .find_map(|r| (r.da(mit_bank, epoch, mit) == open_da).then_some(r.seq))
            } else {
                self.ensure_index(local, epoch, mit_bank, mit);
                self.row_index[local]
                    .map
                    .get(&open_da)
                    .map(|bucket| *bucket.front().expect("row buckets are never left empty"))
            };
            tr.stop(&mut self.profile, Phase::Translate);
            if let Some(seq) = hit_seq {
                (
                    self.lane()
                        .earliest_rd(bank, 0, &self.timing)
                        .min(self.lane().earliest_wr(bank, 0, &self.timing)),
                    self.lane().cas_intrinsic(bank),
                    FrontierScope::Channel,
                    Resolved::Cas {
                        seq,
                        da: open_da,
                        epoch,
                    },
                )
            } else {
                let raw = self.lane().earliest_pre(bank, 0);
                (raw, raw, FrontierScope::Bank, Resolved::Pre)
            }
        } else {
            let head_ready = self.queues[local].front().map(|r| r.ready_at).unwrap_or(0);
            (
                self.lane()
                    .earliest_act(bank, 0, &self.timing)
                    .max(head_ready),
                self.lane().act_intrinsic(bank).max(head_ready),
                FrontierScope::Rank,
                Resolved::Act,
            )
        }
    }

    /// Whether local bank `local` has an RFM pending.
    #[inline]
    fn needs_rfm(&self, local: usize) -> bool {
        self.raa
            .as_ref()
            .is_some_and(|r| r.needs_rfm(BankId(local as u32)))
    }

    /// The current coupled floor `scope` applies to `local`'s intrinsic
    /// frontier: `raw == max(intrinsic, slot_floor(scope))` (asserted in
    /// `refresh_slot`). Bank-scoped frontiers have no coupling (floor 0).
    #[inline]
    fn slot_floor(&self, scope: FrontierScope, local: usize) -> Cycle {
        match scope {
            FrontierScope::Bank => 0,
            FrontierScope::Rank => self.lane().act_floor(self.gbank(local), &self.timing),
            FrontierScope::Channel => self.lane().cas_floor(self.gbank(local), &self.timing),
        }
    }

    /// Recomputes and stores local bank `local`'s frontier memo.
    fn refresh_slot(
        &mut self,
        local: usize,
        needs_rfm: bool,
        mit: &mut AnyMitigation,
        moff: usize,
    ) {
        let (raw, intrinsic, scope, resolved) = self.bank_frontier_raw(local, needs_rfm, mit, moff);
        // The O(1) revalidation identity: the coupled state enters every
        // lane `earliest_*` purely as a floor over the bank-scoped part.
        debug_assert_eq!(raw, intrinsic.max(self.slot_floor(scope, local)));
        let consult_pending = !needs_rfm
            && self.lane().open_row(self.gbank(local)).is_none()
            && self.queues[local].front().is_some_and(|r| !r.act_charged);
        self.frontier[local] = FrontierSlot {
            bank_cmd_seq: self.bank_cmd_seq[local],
            bank_seq: self.bank_seq[local],
            coupled_seq: self.coupled_seq(scope, local),
            raw,
            intrinsic,
            scope,
            consult_pending,
            // The decision cache is the resolved calendar's alone — the
            // reference engines (and `force_unresolved_calendar`) keep
            // re-deriving every decision through the full tree.
            resolved: if self.resolved {
                resolved
            } else {
                Resolved::None
            },
        };
    }

    /// Attempts the O(1) slot revalidation: when only the slot's *coupled*
    /// counter went stale (a same-rank ACT or a channel CAS elsewhere) the
    /// branch selection, consult flag, and intrinsic part all still hold —
    /// they are functions of bank-scoped state — so the fresh `raw` is just
    /// the memoized intrinsic under the re-read floor. Returns false when
    /// the bank-scoped counters themselves moved (full `refresh_slot`
    /// required). Calendar engine only; the walk recomputes in full.
    #[inline]
    fn revalidate_coupled(&mut self, local: usize) -> bool {
        let slot = self.frontier[local];
        if slot.bank_cmd_seq != self.bank_cmd_seq[local] || slot.bank_seq != self.bank_seq[local] {
            return false;
        }
        let raw = slot.intrinsic.max(self.slot_floor(slot.scope, local));
        // Unrouted coupling mutations only move frontiers later (the
        // module's monotone-later contract).
        debug_assert!(raw >= slot.raw);
        let coupled = self.coupled_seq(slot.scope, local);
        let s = &mut self.frontier[local];
        s.raw = raw;
        s.coupled_seq = coupled;
        true
    }

    /// The earliest future cycle at which this shard can act: the minimum
    /// over its active banks' frontiers (memoized) and its ranks' refresh
    /// deadlines. Unclamped — the coordinator applies `max(now + 1)` after
    /// folding in completions and core eligibility.
    pub fn next_min(&mut self, now: Cycle, mit: &mut AnyMitigation, moff: usize) -> Cycle {
        // Cache reuse (calendar engine): every input — the memoized raws,
        // the bus floor, the refresh deadlines — is committed shard state,
        // untouched since the skipped pass, and the tREFI probe lands on
        // the same boundary while `now < cached_next`. A recompute would
        // return the identical value.
        if self.engine == EngineMode::Calendar && self.cache_clean && self.cached_next > now {
            return self.cached_next;
        }
        let sched = PhaseTimer::start(&mut self.profile);
        let mut next = Cycle::MAX;
        let mut skip_ok = true;
        let floor = self.cmd_ready.max(self.block_until);
        match self.engine {
            // Only active banks can produce a bank event; the active set is
            // a superset of the banks the full scan would have accepted (it
            // can additionally hold Closed-policy banks with an open row
            // and no queue, which the empty-queue guard skips exactly as
            // the full scan did). The reference engine re-activates every
            // bank and bypasses the memo so it keeps exercising the
            // original recompute-every-bank path.
            EngineMode::FullScan => {
                self.active.insert_all();
                for w in 0..self.active.words() {
                    let mut bits = self.active.word(w);
                    while bits != 0 {
                        let local = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let needs_rfm = self.needs_rfm(local);
                        if self.queues[local].is_empty() && !needs_rfm {
                            continue;
                        }
                        let raw = self.bank_frontier_raw(local, needs_rfm, mit, moff).0;
                        next = next.min(raw.max(floor));
                    }
                }
            }
            EngineMode::FrontierWalk => {
                for w in 0..self.active.words() {
                    let mut bits = self.active.word(w);
                    while bits != 0 {
                        let local = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let needs_rfm = self.needs_rfm(local);
                        if self.queues[local].is_empty() && !needs_rfm {
                            continue;
                        }
                        if !self.slot_valid(local) {
                            self.refresh_slot(local, needs_rfm, mit, moff);
                        }
                        next = next.min(self.frontier[local].raw.max(floor));
                    }
                }
            }
            EngineMode::Calendar => {
                // Pending banks contribute like the walk — and any bank
                // whose refreshed memo proves it idle with no consult
                // armed graduates to the calendar, so it never costs
                // another examination until its event fires or a routed
                // mutation pulls it back.
                for w in 0..self.pending.words() {
                    let mut bits = self.pending.word(w);
                    while bits != 0 {
                        let local = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let needs_rfm = self.needs_rfm(local);
                        if self.queues[local].is_empty() && !needs_rfm {
                            // No bank event possible; stays pending so the
                            // pass keeps examining it (Closed-policy
                            // eager-PRE banks must not contribute here,
                            // matching the walk engine's skip) — which
                            // also means the pass is not skippable.
                            skip_ok = false;
                            continue;
                        }
                        if !self.slot_valid(local) && !self.revalidate_coupled(local) {
                            self.refresh_slot(local, needs_rfm, mit, moff);
                        }
                        let slot = self.frontier[local];
                        // An armed consult fires at the next visited pass
                        // whatever `raw` says, so the pass must run.
                        skip_ok &= !slot.consult_pending;
                        next = next.min(slot.raw.max(floor));
                        // Same near-term threshold as `visit_pending`:
                        // a heap entry due by `now + 1` would pop on the
                        // very next pass — cheaper left in the bitmask.
                        if !slot.consult_pending && slot.raw > now + 1 {
                            self.pending.remove(local);
                            self.calendar.push(slot.raw, local);
                        }
                    }
                }
                // Pop-validate: discard stale-early tops until the
                // earliest live entry's memo is still valid — under the
                // monotone-later contract every other live entry's true
                // frontier is at or after it, so that entry IS the exact
                // heap minimum.
                let cal = PhaseTimer::start(&mut self.profile);
                while let Some((at, local)) = self.calendar.peek_live() {
                    if self.slot_valid(local) {
                        next = next.min(at.max(floor));
                        break;
                    }
                    if !self.revalidate_coupled(local) {
                        let needs_rfm = self.needs_rfm(local);
                        self.refresh_slot(local, needs_rfm, mit, moff);
                    }
                    let slot = self.frontier[local];
                    if slot.consult_pending {
                        // Unreachable by the routing contract (consults
                        // only arm through paths that park the bank in
                        // `pending`); tolerate it defensively.
                        debug_assert!(false, "consult armed on a calendar-parked bank");
                        next = next.min(slot.raw.max(floor));
                        self.calendar.invalidate(local);
                        self.pending.insert(local);
                    } else if slot.raw <= now + 1 {
                        // Refreshed to a near-term frontier: re-parking
                        // it would pop next pass anyway — demote to
                        // `pending` and fold its contribution in here
                        // (the pending loop above already ran).
                        next = next.min(slot.raw.max(floor));
                        self.calendar.invalidate(local);
                        self.pending.insert(local);
                    } else {
                        self.calendar.push(slot.raw, local);
                    }
                }
                cal.stop(&mut self.profile, Phase::Calendar);
            }
        }
        // An armed ABO recovery window: the drain phase must get a pass
        // attempt every cycle (its issue conditions — open rows closing,
        // rank readiness — are exactly the refresh engine's, and the
        // in-scope banks' own frontiers no longer model them while the
        // scheduler yields them). A recovery-armed shard therefore pins
        // the legacy one-cycle crawl and reports `!skip_ok`, the same
        // honest fallback as an armed mitigation consult.
        if self.recovery_pending() {
            skip_ok = false;
            next = next.min(now);
        }
        // Refresh phase contribution, in two forms. The *legacy*
        // conservative form — a due rank contributes `now` (the clock then
        // steps one cycle at a time through the whole postponement
        // stretch) and an undue rank the next tREFI boundary — is what the
        // walk and scan engines return, and what the calendar engine's
        // `legacy_next` records: the coordinator falls back to the min of
        // the legacy bounds whenever any shard needs per-pass examination,
        // because that shard's consult and eager-PRE timing inherited the
        // global crawl cadence, refresh pins of other shards included. The
        // *exact* form ([`refresh_wake`](Self::refresh_wake)) — a
        // postponing rank with open rows is a provable no-op until its
        // debt hits the JEDEC limit, which is where most 1-cycle clock
        // pins came from — is this shard's `next_min` value when it is
        // itself skippable, and drives the clock only when every shard is.
        let exact = self.engine == EngineMode::Calendar && skip_ok;
        let mut refresh_wake = Cycle::MAX;
        let mut legacy_next = next;
        for lr in 0..self.ranks {
            let deadline = self.lane().refresh_deadline(self.grank(lr));
            let legacy_t = if now >= deadline {
                now
            } else {
                let refi = self.timing.t_refi;
                ((now / refi) + 1) * refi
            };
            legacy_next = legacy_next.min(legacy_t);
            if exact {
                let w = self.refresh_wake(lr, now);
                refresh_wake = refresh_wake.min(w);
                next = next.min(w);
            } else {
                refresh_wake = refresh_wake.min(deadline);
                next = next.min(legacy_t);
            }
        }
        self.legacy_next = legacy_next;
        if self.engine == EngineMode::Calendar {
            self.cached_next = next;
            self.cache_clean = true;
            self.skip_ok = skip_ok;
            self.refresh_wake = refresh_wake;
        }
        sched.stop(&mut self.profile, Phase::Schedule);
        next
    }

    /// The exact next cycle at which the refresh phase can do anything for
    /// local rank `lr` (calendar engine, `skip_ok` passes only):
    ///
    /// * **rows open, debt below the JEDEC limit** — the phase postpones
    ///   at every pass, so it is a no-op until the urgency cycle
    ///   (`deadline + (MAX_POSTPONE - 1) * tREFI`, the first cycle
    ///   [`RankState::must_refresh`] holds);
    /// * **all banks precharged** — the next cycle a REF can actually
    ///   start: the due deadline, rank readiness, and the command bus;
    /// * **urgent force-drain with rows open** — the next cycle a PRE can
    ///   land on the earliest-ready open bank.
    ///
    /// Exact because every input — open rows, bank/rank readiness, the
    /// bus claim, the deadline itself — mutates only inside a pass that
    /// runs, and such a pass clears `cache_clean`, forcing a recompute
    /// before the next jump. Conservative-late never happens; a
    /// conservative-early wake only costs a no-op visit.
    fn refresh_wake(&self, lr: usize, now: Cycle) -> Cycle {
        let rank = self.grank(lr);
        let lane = self.lane();
        let deadline = lane.refresh_deadline(rank);
        let bus = self.cmd_ready.max(self.block_until);
        let mut min_pre = Cycle::MAX;
        for b in 0..self.bpr {
            let bank = self.gbank(lr * self.bpr + b);
            if lane.open_row(bank).is_some() {
                min_pre = min_pre.min(lane.earliest_pre(bank, now));
            }
        }
        if min_pre == Cycle::MAX {
            // All banks precharged: the next REF start.
            deadline.max(lane.earliest_ref(rank, now)).max(bus)
        } else {
            let urgent_at = deadline
                .saturating_add((RankState::MAX_POSTPONE - 1).saturating_mul(self.timing.t_refi));
            if now < urgent_at {
                urgent_at
            } else {
                min_pre.max(bus)
            }
        }
    }

    /// Per-bank queue diagnostics for the watchdog's stall snapshot
    /// (global bank ids; only banks with queued work are reported).
    pub fn bank_stalls(&self, out: &mut Vec<BankStall>) {
        for (local, q) in self.queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            out.push(BankStall {
                bank: self.bank_base + local,
                queue_depth: q.len(),
                open_row: self.lane().open_row(self.gbank(local)),
                head_ready_at: q.front().map(|r| r.ready_at).unwrap_or(0),
                rfm_pending: self
                    .raa
                    .as_ref()
                    .is_some_and(|r| r.needs_rfm(BankId(local as u32))),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_dram::geometry::DramGeometry;
    use shadow_mitigations::NoMitigation;
    use shadow_rh::RhParams;
    use shadow_sim::rng::Xoshiro256;

    /// Case count: `PROPTEST_CASES` env override, else `default` (the same
    /// knob the proptest-style suites across the workspace honor).
    fn cases(default: u64) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn twin_geometry() -> DramGeometry {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 2,
            bank_groups: 1,
            banks_per_group: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 8,
            columns: 8,
            column_bytes: 64,
        }
    }

    fn build_shard(
        engine: EngineMode,
        policy: PagePolicy,
        raaimt: u32,
        linear_frfcfs: bool,
        resolved: bool,
    ) -> ChannelShard {
        let geo = twin_geometry();
        let tp = TimingParams::tiny();
        let banks = geo.total_banks() as usize;
        let ranks = geo.ranks_per_channel as usize;
        let ledgers = (0..banks)
            .map(|_| {
                HammerLedger::new(
                    geo.rows_per_bank(),
                    geo.rows_per_subarray,
                    RhParams::new(64, 1),
                )
            })
            .collect();
        let mut shard = ChannelShard::new(
            0,
            0,
            banks,
            ranks,
            policy,
            engine,
            linear_frfcfs,
            resolved,
            tp,
            ledgers,
            Some(RaaCounters::new(banks, raaimt)),
            false,
        );
        shard.lane = Some(ChannelLane::new(0, &geo, &tp));
        shard
    }

    /// Drives five engine twins (resolved calendar, unresolved calendar,
    /// frontier walk, full scan, full scan + linear FR-FCFS) through one
    /// identical randomized sequence of admissions, passes, and `next_min`
    /// probes, asserting lock-step agreement on every observable: the
    /// issued command stream, CAS completions, progress flags, queue
    /// depths, and — the calendar's exactness contract — every `next_min`
    /// value.
    ///
    /// The clock advance deliberately mixes event jumps (`next_min`) with
    /// single-cycle crawls and random stutters, so the calendar engine is
    /// exercised on stale-entry discard (events popped after invalidation),
    /// seq-counter edges (passes land between a command and its memo
    /// refresh), and spurious early visits (passes at non-event cycles).
    /// Returns command counts for the caller's coverage asserts.
    fn drive_twins(seed: u64) -> (u64, u64, u64) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let policy = if rng.gen_bool(0.5) {
            PagePolicy::Open
        } else {
            PagePolicy::Closed
        };
        // A tiny RAAIMT forces RFM recovery events into every run.
        let raaimt = rng.gen_range(3, 9) as u32;
        // The second twin runs the calendar with the resolved-decision
        // cache defeated (`force_unresolved_calendar`), differentially
        // checking decision consumption and CAS-burst streaming against
        // the per-pass re-derivation; the fifth runs the full scan with
        // the linear FR-FCFS reference, so every sequence also checks the
        // row index against the original hit scan.
        let mut shards = [
            build_shard(EngineMode::Calendar, policy, raaimt, false, true),
            build_shard(EngineMode::Calendar, policy, raaimt, false, false),
            build_shard(EngineMode::FrontierWalk, policy, raaimt, false, false),
            build_shard(EngineMode::FullScan, policy, raaimt, false, false),
            build_shard(EngineMode::FullScan, policy, raaimt, true, false),
        ];
        let geo = twin_geometry();
        let banks = geo.total_banks() as usize;
        let rows = geo.rows_per_bank();
        let mut mit = AnyMitigation::from(Box::new(NoMitigation::new()) as Box<dyn Mitigation>);

        let mut now: Cycle = 0;
        // Run well past tREFI so refresh deadlines, urgent PREs, and REF
        // recovery all participate.
        let horizon: Cycle = TimingParams::tiny().t_refi * 6;
        let (mut acts, mut cas, mut refs) = (0u64, 0u64, 0u64);
        let mut admits: Vec<Vec<(usize, QueuedReq)>> = vec![Vec::new(); 5];
        while now < horizon {
            if rng.gen_bool(0.4) {
                for _ in 0..rng.gen_range(1, 4) {
                    let req = QueuedReq {
                        core: 0,
                        pa_row: rng.gen_range(0, rows as u64) as u32,
                        write: rng.gen_bool(0.3),
                        enqueued_at: now,
                        ready_at: now + rng.gen_range(0, 3),
                        act_charged: false,
                        cached_da: 0,
                        cached_epoch: NO_EPOCH,
                        seq: 0,
                    };
                    let local = rng.gen_index(banks);
                    for a in admits.iter_mut() {
                        a.push((local, req.clone()));
                    }
                }
            }
            let replies: Vec<ShardReply> = shards
                .iter_mut()
                .zip(admits.iter_mut())
                .map(|(s, a)| s.pass(now, a, &mut mit, 0))
                .collect();
            for r in &replies[1..] {
                assert_eq!(r.progressed, replies[0].progressed, "seed {seed} @ {now}");
                assert_eq!(r.cmd, replies[0].cmd, "seed {seed} @ {now}");
                assert_eq!(r.completion, replies[0].completion, "seed {seed} @ {now}");
                assert_eq!(r.queued, replies[0].queued, "seed {seed} @ {now}");
            }
            match replies[0].cmd {
                Some((_, DramCommand::Act { .. })) => acts += 1,
                Some((_, DramCommand::Rd { .. } | DramCommand::Wr { .. })) => cas += 1,
                Some((_, DramCommand::Ref { .. })) => refs += 1,
                _ => {}
            }
            let mins: Vec<Cycle> = shards
                .iter_mut()
                .map(|s| s.next_min(now, &mut mit, 0))
                .collect();
            assert_eq!(
                mins[2], mins[3],
                "frontier-walk vs full-scan next_min, seed {seed} @ {now}"
            );
            assert_eq!(
                mins[4], mins[3],
                "linear-frfcfs vs indexed full-scan next_min, seed {seed} @ {now}"
            );
            // The resolved-decision cache never changes a frontier value —
            // a streamed slot stores exactly what a fresh derivation
            // computes — so the two calendar twins agree to the cycle.
            assert_eq!(
                mins[0], mins[1],
                "resolved vs unresolved calendar next_min, seed {seed} @ {now}"
            );
            // The calendar's exact refresh wake may legitimately exceed
            // the legacy engines' conservative pin — but never undercut
            // it, and the reply-equality asserts above prove every cycle
            // it would skip is a no-op on the legacy engines too (the
            // driver's crawl/stutter branches visit those cycles).
            assert!(
                mins[0] >= mins[2],
                "calendar next_min undercut the walk ({} < {}), seed {seed} @ {now}",
                mins[0],
                mins[2]
            );
            // The fallback bound the coordinator uses when any shard
            // needs per-pass examination must be cadence-identical to the
            // legacy engines' value — that equivalence is what makes the
            // cross-shard fallback reproduce the walk's crawl. Compare
            // under the coordinator's `max(now + 1)` clamp: the calendar's
            // cache-reuse path legitimately keeps a stale due-rank pin
            // (`now0 < now`) that the clamp maps to the same next cycle.
            for cal in 0..2 {
                assert_eq!(
                    shards[cal].legacy_next().max(now + 1),
                    mins[2].max(now + 1),
                    "calendar twin {cal} legacy_next vs walk next_min, seed {seed} @ {now}"
                );
                assert!(
                    !shards[cal].skip_ok() || mins[cal] >= shards[cal].legacy_next(),
                    "skippable shard's exact wake below its legacy bound, seed {seed} @ {now}"
                );
            }
            // Advance: usually jump to the event, sometimes crawl or
            // stutter short of it to provoke stale/early calendar pops.
            now = if replies[0].progressed || rng.gen_bool(0.25) {
                now + 1
            } else {
                let next = mins[0].max(now + 1);
                if rng.gen_bool(0.2) {
                    (now + 1 + rng.gen_range(0, 4)).min(next)
                } else {
                    next
                }
            };
        }
        for s in &shards[1..] {
            assert_eq!(shards[0].queued(), s.queued(), "seed {seed}");
        }
        (acts, cas, refs)
    }

    #[test]
    fn engines_agree_on_randomized_sequences() {
        let mut covered = (0u64, 0u64, 0u64);
        for seed in 0..cases(12) {
            let (a, c, r) = drive_twins(0xCA1E_0000 + seed);
            covered.0 += a;
            covered.1 += c;
            covered.2 += r;
        }
        // The sweep as a whole must have exercised the interesting command
        // classes, or the agreement above proved nothing.
        assert!(covered.0 > 0, "no ACTs issued across the sweep");
        assert!(covered.1 > 0, "no CAS issued across the sweep");
        assert!(covered.2 > 0, "no REFs issued across the sweep");
    }

    #[test]
    fn calendar_pool_partition_invariant() {
        // After any randomized drive, a calendar shard's examined pool and
        // parked pool stay disjoint subsets of the active set.
        let mut shard = build_shard(EngineMode::Calendar, PagePolicy::Open, 4, false, true);
        let mut mit = AnyMitigation::from(Box::new(NoMitigation::new()) as Box<dyn Mitigation>);
        let mut rng = Xoshiro256::seed_from_u64(0xD15_701);
        let banks = twin_geometry().total_banks() as usize;
        let rows = twin_geometry().rows_per_bank();
        let mut admits = Vec::new();
        let mut now = 0;
        for _ in 0..400 {
            if rng.gen_bool(0.5) {
                admits.push((
                    rng.gen_index(banks),
                    QueuedReq {
                        core: 0,
                        pa_row: rng.gen_range(0, rows as u64) as u32,
                        write: rng.gen_bool(0.3),
                        enqueued_at: now,
                        ready_at: now,
                        act_charged: false,
                        cached_da: 0,
                        cached_epoch: NO_EPOCH,
                        seq: 0,
                    },
                ));
            }
            shard.pass(now, &mut admits, &mut mit, 0);
            let next = shard.next_min(now, &mut mit, 0);
            for local in 0..banks {
                assert!(
                    !shard.pending.contains(local) || shard.active.contains(local),
                    "pending bank {local} not active"
                );
            }
            now = next.max(now + 1).min(now + 50);
        }
    }
}
