//! [`ChannelShard`]: one DRAM channel's slice of the memory controller.
//!
//! DRAM channels share no timing state, and — after the per-bank RNG
//! substream rework in `shadow-mitigations` — no mitigation state either.
//! Everything the scheduler owns per channel (bank queues, Row Hammer
//! ledgers, RAA counters, the frontier memo, the channel's
//! [`ChannelLane`]) therefore lives in a [`ChannelShard`] that can step one
//! scheduling pass independently of its siblings.
//!
//! The serial engine iterates shards in ascending channel order on one
//! thread; the sharded engine runs the *same* shard code on persistent
//! worker threads, synchronizing at every pass. Either way the coordinator
//! (`crate::system::MemSystem`) merges each pass's results in fixed channel
//! order, so the two modes produce bit-identical reports and command
//! traces.
//!
//! The merge stays cheap because of a proven invariant: **a channel issues
//! at most one command per cycle.** Every issue path checks the channel's
//! command-bus claim (`cmd_ready <= now`) and issuing re-claims the bus for
//! the rest of the cycle, so a pass returns at most one command and at most
//! one CAS completion per shard — a tiny fixed-size [`ShardReply`], not a
//! buffer.
//!
//! Bank indices inside a shard are channel-local (`0..banks`); the
//! mitigation may be the *whole* scheme (serial mode — indices offset by
//! `moff`, the shard's global bank base) or a per-channel piece from
//! [`Mitigation::split_channels`] (sharded mode — `moff == 0`).

use std::collections::VecDeque;

use shadow_dram::command::DramCommand;
use shadow_dram::geometry::BankId;
use shadow_dram::lane::ChannelLane;
use shadow_dram::rfm::RaaCounters;
use shadow_dram::timing::TimingParams;
use shadow_mitigations::Mitigation;
use shadow_rh::HammerLedger;
use shadow_sim::profiler::{Phase, PhaseProfile, PhaseTimer};
use shadow_sim::stats::Histogram;
use shadow_sim::time::Cycle;

use crate::active::ActiveBanks;
use crate::config::PagePolicy;
use crate::error::BankStall;

/// Sentinel core index for posted writes (no completion to deliver at CAS).
pub(crate) const POSTED: usize = usize::MAX;

/// Sentinel remap epoch marking a translation cache as unfilled. Real
/// epochs start at 0 and bump once per remap, so `u64::MAX` is unreachable.
pub(crate) const NO_EPOCH: u64 = u64::MAX;

/// A request waiting in a bank queue.
#[derive(Debug, Clone)]
pub(crate) struct QueuedReq {
    pub core: usize,
    pub pa_row: u32,
    pub write: bool,
    /// Cycle the request entered the controller (latency accounting).
    pub enqueued_at: Cycle,
    /// Earliest cycle the ACT may issue (throttling delay applied).
    pub ready_at: Cycle,
    /// Whether the mitigation has been consulted for this request's ACT.
    pub act_charged: bool,
    /// The translated DA row, valid while the bank sits at `cached_epoch`.
    pub cached_da: u32,
    /// The bank's remap epoch when `cached_da` was computed ([`NO_EPOCH`]
    /// until first use — admission happens on the coordinator, which in
    /// sharded mode has no mitigation to consult, so translation is
    /// deferred to the owning shard; `Mitigation::translate` is a pure
    /// lookup, so the value is identical either way).
    pub cached_epoch: u64,
}

impl QueuedReq {
    /// The request's DA row, re-translating only if the bank's remap
    /// `epoch` has moved since the cached value was computed.
    ///
    /// `Mitigation::translate` is contractually a pure lookup, so the
    /// cached value is exact — this is what turns the FR-FCFS row-hit scan
    /// from a translation per request per pass into a field compare.
    fn da(&mut self, mit_bank: usize, epoch: u64, mitigation: &mut dyn Mitigation) -> u32 {
        if self.cached_epoch != epoch {
            self.cached_da = mitigation.translate(mit_bank, self.pa_row);
            self.cached_epoch = epoch;
        }
        self.cached_da
    }
}

/// A memoized per-bank frontier time, shared by [`ChannelShard::next_min`]
/// (skip recomputing a still-valid bank contribution) and the scheduling
/// pass (skip the whole `schedule_bank` decision tree for a bank that
/// provably cannot accept a command at `now`).
///
/// `raw` is the bank's earliest-issue cycle computed *now-independently*
/// (the lane's `earliest_*` queries clamp to `now` and are otherwise pure
/// functions of committed state, so they are evaluated at `now = 0` and
/// clamped by the caller — the final `max(now + 1)` absorbs any sub-`now`
/// value exactly as the unclamped scan did).
///
/// Validity is scoped to exactly the committed state the memoized value
/// read. Branch selection (RFM pending, open row, row hit, head readiness)
/// is a function of the bank's own command history and scheduler
/// bookkeeping alone, so every slot is pinned by `bank_cmd_seq` (bumped per
/// command to this bank — a rank's REF bumps every bank it blocks) and
/// `bank_seq` (command-free scheduler mutations: admissions, mitigation
/// consults). On top of that, `scope` records the widest cross-bank
/// coupling the lane queries behind the branch actually read, and
/// `coupled_seq` pins that coupling:
///
///  - [`FrontierScope::Bank`] — a PRE frontier (`earliest_pre` reads only
///    the bank's own timers), nothing further to pin;
///  - [`FrontierScope::Rank`] — an ACT frontier adds the rank's
///    tRRD/tFAW/refresh-recovery window, mutated only by same-rank ACTs
///    (each bumps the shard's `rank_act_seq`);
///  - [`FrontierScope::Channel`] — a RD/WR frontier adds the channel CAS
///    coupling (tCCD spacing, data-bus occupancy, and the rank's tWTR, all
///    mutated only by RD/WR, each of which bumps the shard's `cas_seq`; a
///    rank's banks share one channel, so the channel counter covers tWTR
///    too).
///
/// A PRE elsewhere on the channel, or a CAS to another rank's bank, no
/// longer invalidates an ACT frontier — that is the point: FR-FCFS read
/// storms leave closed banks' memos intact.
///
/// `consult_pending` records whether, at compute time, the bank had a
/// closed row and an un-`act_charged` head — the one `schedule_bank` path
/// with a side effect (the per-request mitigation consult) that fires even
/// when no command issues. The scheduling pass never skips such a bank, so
/// the consult happens at exactly the cycle it always did. The flag is
/// stable while the slot is valid: any open-row change, head removal, or
/// `needs_rfm` flip comes from a command to this bank (`bank_cmd_seq`),
/// and charging the head or admitting to an empty queue bumps `bank_seq`.
#[derive(Debug, Clone, Copy)]
struct FrontierSlot {
    bank_cmd_seq: u64,
    bank_seq: u64,
    /// The rank or channel counter captured at compute time (`scope`
    /// decides which; unused for bank-local frontiers).
    coupled_seq: u64,
    raw: Cycle,
    scope: FrontierScope,
    consult_pending: bool,
}

/// The widest cross-bank state a memoized frontier read; see
/// [`FrontierSlot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrontierScope {
    Bank,
    Rank,
    Channel,
}

impl FrontierSlot {
    const INVALID: FrontierSlot = FrontierSlot {
        bank_cmd_seq: u64::MAX,
        bank_seq: u64::MAX,
        coupled_seq: u64::MAX,
        raw: 0,
        scope: FrontierScope::Bank,
        consult_pending: true,
    };
}

/// What one shard did in one scheduling pass. Fixed size by the
/// one-command-per-channel-per-cycle invariant (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardReply {
    /// Whether the shard committed a command or consulted the mitigation.
    pub progressed: bool,
    /// The command this channel issued, tagged with the phase that issued
    /// it (`true` = refresh engine, `false` = scheduler). The coordinator
    /// replays all refresh-phase commands in channel order, then all
    /// scheduler-phase commands in channel order — exactly the serial
    /// engine's global refresh-loop-then-scheduling-scan order.
    pub cmd: Option<(bool, DramCommand)>,
    /// CAS completion to deliver: (data-done cycle, core index). `None` for
    /// posted writes (their completion was scheduled at admission).
    pub completion: Option<(Cycle, usize)>,
    /// Requests still queued in this shard after the pass (watchdog input).
    pub queued: usize,
}

/// One channel's scheduler slice. See the module docs.
#[derive(Debug)]
pub(crate) struct ChannelShard {
    /// Global id of this channel's first bank (channel-major flattening:
    /// channels own contiguous bank and rank ranges).
    bank_base: usize,
    /// Global flat index of this channel's first rank.
    rank_base: usize,
    ranks: usize,
    /// Banks per rank.
    bpr: usize,
    page_policy: PagePolicy,
    force_full_scan: bool,
    /// Post-mitigation timing (tRCD extension, refresh multiplier applied).
    /// A copy of the device's set, fixed for the run.
    timing: TimingParams,
    /// The channel's device-timing state, moved in from the
    /// [`DramDevice`](shadow_dram::device::DramDevice) for the duration of
    /// a run and restored afterwards.
    pub lane: Option<ChannelLane>,
    queues: Vec<VecDeque<QueuedReq>>,
    pub ledgers: Vec<HammerLedger>,
    raa: Option<RaaCounters>,
    /// Banks the scheduling pass must visit (queued work, pending RFM, or a
    /// row left open under the closed-page policy). Channel-local indices.
    active: ActiveBanks,
    pub latency: Histogram,
    /// Cycle at which the channel's command bus is next usable.
    cmd_ready: Cycle,
    /// Mitigation-imposed blocking (RRS swaps).
    block_until: Cycle,
    pub blocked_cycles: Cycle,
    pub throttle_cycles: Cycle,
    /// Cycles in which this channel issued a command (≤ 1 per cycle).
    pub busy_cycles: u64,
    /// Requests currently queued across the shard's banks.
    queued: usize,
    /// Per-bank count of committed commands touching that bank's timers
    /// (frontier invalidation, bank scope).
    bank_cmd_seq: Vec<u64>,
    /// Per-local-rank ACT count (tRRD/tFAW coupling — frontier
    /// invalidation, rank scope).
    rank_act_seq: Vec<u64>,
    /// Channel CAS count (tCCD/bus/tWTR coupling — frontier invalidation,
    /// channel scope).
    cas_seq: u64,
    /// Per-bank count of command-free scheduler mutations (admissions,
    /// mitigation consults — frontier invalidation).
    bank_seq: Vec<u64>,
    /// Memoized frontier contributions, one slot per bank.
    frontier: Vec<FrontierSlot>,
    /// The command issued by the pass in flight (see
    /// [`take_issued`](Self::take_issued)).
    issued: Option<DramCommand>,
    /// CAS completion produced by the pass in flight.
    pending_completion: Option<(Cycle, usize)>,
    /// Hot-path phase profile (`Some` only when requested and compiled in).
    pub profile: Option<PhaseProfile>,
}

impl ChannelShard {
    /// Builds the shard for the channel whose first bank is `bank_base`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bank_base: usize,
        rank_base: usize,
        banks: usize,
        ranks: usize,
        page_policy: PagePolicy,
        force_full_scan: bool,
        timing: TimingParams,
        ledgers: Vec<HammerLedger>,
        raa: Option<RaaCounters>,
        profile: bool,
    ) -> Self {
        debug_assert_eq!(ledgers.len(), banks);
        debug_assert_eq!(banks % ranks.max(1), 0);
        ChannelShard {
            bank_base,
            rank_base,
            ranks,
            bpr: banks / ranks.max(1),
            page_policy,
            force_full_scan,
            timing,
            lane: None,
            queues: (0..banks).map(|_| VecDeque::new()).collect(),
            ledgers,
            raa,
            active: ActiveBanks::new(banks),
            // 16-cycle buckets out to 4096 cycles covers every DDR4/DDR5
            // latency of interest; beyond that the overflow bucket absorbs.
            latency: Histogram::new(16, 256),
            cmd_ready: 0,
            block_until: 0,
            blocked_cycles: 0,
            throttle_cycles: 0,
            busy_cycles: 0,
            queued: 0,
            bank_cmd_seq: vec![0; banks],
            rank_act_seq: vec![0; ranks],
            cas_seq: 0,
            bank_seq: vec![0; banks],
            frontier: vec![FrontierSlot::INVALID; banks],
            issued: None,
            pending_completion: None,
            profile: if profile && shadow_sim::profiler::profiler_compiled() {
                Some(PhaseProfile::new())
            } else {
                None
            },
        }
    }

    /// Global id of this shard's first bank.
    pub fn bank_base(&self) -> usize {
        self.bank_base
    }

    /// Requests queued across the shard's banks.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// The global [`BankId`] of local bank `local`.
    #[inline]
    fn gbank(&self, local: usize) -> BankId {
        BankId((self.bank_base + local) as u32)
    }

    /// The global flat rank of local rank `lr`.
    #[inline]
    fn grank(&self, lr: usize) -> u32 {
        (self.rank_base + lr) as u32
    }

    #[inline]
    fn lane(&self) -> &ChannelLane {
        self.lane
            .as_ref()
            .expect("lane moved into shard for the run")
    }

    /// Admits one decoded request into local bank `local`'s queue.
    pub fn admit(&mut self, local: usize, req: QueuedReq) {
        self.queues[local].push_back(req);
        self.active.insert(local);
        self.touch_bank(local);
        self.queued += 1;
    }

    /// Commits one command: applies it on the lane, claims the channel's
    /// command bus for this cycle, and invalidates exactly the memoized
    /// frontier scopes whose state the command mutated (see
    /// [`FrontierSlot`]). Every command the shard emits goes through here,
    /// which is what makes the invalidation exhaustive on the command side:
    ///
    ///  - every command advances its own bank's timers → `bank_cmd_seq`
    ///    (REF blocks and rewinds every bank of its rank, so it bumps each
    ///    of them — that also covers the rank-level refresh-recovery window
    ///    `earliest_act` reads, since only same-rank banks read it);
    ///  - ACT additionally opens a rank tRRD/tFAW window → `rank_act_seq`;
    ///  - RD/WR additionally move the channel's tCCD/bus/tWTR state →
    ///    `cas_seq`.
    ///
    /// The bookkeeping half (stats/history/trace) happens on the
    /// coordinator via `DramDevice::record`, in canonical channel order.
    #[inline]
    fn issue(&mut self, cmd: DramCommand, now: Cycle) -> shadow_dram::device::IssueResult {
        debug_assert!(self.issued.is_none(), "two commands in one channel-cycle");
        let t = PhaseTimer::start(self.profile.is_some());
        let res = self
            .lane
            .as_mut()
            .expect("lane present")
            .apply(cmd, now, &self.timing);
        t.stop(&mut self.profile, Phase::Device);
        self.cmd_ready = now + 1;
        self.busy_cycles += 1;
        self.issued = Some(cmd);
        match cmd {
            DramCommand::Act { bank, .. } => {
                let l = bank.0 as usize - self.bank_base;
                self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
                let lr = l / self.bpr;
                self.rank_act_seq[lr] = self.rank_act_seq[lr].wrapping_add(1);
            }
            DramCommand::Pre { bank } | DramCommand::Rfm { bank } => {
                let l = bank.0 as usize - self.bank_base;
                self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
            }
            DramCommand::Rd { bank } | DramCommand::Wr { bank } => {
                let l = bank.0 as usize - self.bank_base;
                self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
                self.cas_seq = self.cas_seq.wrapping_add(1);
            }
            DramCommand::Ref { rank } => {
                let lr = rank as usize - self.rank_base;
                for b in 0..self.bpr {
                    let l = lr * self.bpr + b;
                    self.bank_cmd_seq[l] = self.bank_cmd_seq[l].wrapping_add(1);
                }
            }
        }
        res
    }

    /// Marks a command-free mutation of local bank `local`'s scheduler
    /// state (admission, mitigation consult), invalidating its memo.
    #[inline]
    fn touch_bank(&mut self, local: usize) {
        self.bank_seq[local] = self.bank_seq[local].wrapping_add(1);
    }

    /// Whether `local`'s memoized frontier still reflects current state:
    /// the bank-scoped counters must match, plus whichever coupled counter
    /// the slot's scope pinned (see [`FrontierSlot`]).
    #[inline]
    fn slot_valid(&self, local: usize) -> bool {
        let slot = &self.frontier[local];
        if slot.bank_cmd_seq != self.bank_cmd_seq[local] || slot.bank_seq != self.bank_seq[local] {
            return false;
        }
        match slot.scope {
            FrontierScope::Bank => true,
            FrontierScope::Rank => slot.coupled_seq == self.rank_act_seq[local / self.bpr],
            FrontierScope::Channel => slot.coupled_seq == self.cas_seq,
        }
    }

    /// The current value of the coupled invalidation counter `scope` pins.
    #[inline]
    fn coupled_seq(&self, scope: FrontierScope, local: usize) -> u64 {
        match scope {
            FrontierScope::Bank => 0,
            FrontierScope::Rank => self.rank_act_seq[local / self.bpr],
            FrontierScope::Channel => self.cas_seq,
        }
    }

    /// Applies a mitigation's refreshes/copies to the fault ledger.
    ///
    /// A targeted refresh is physically an ACT-PRE of the victim row, so it
    /// restores the row *and deposits one unit of disturbance on its own
    /// neighbours* — the side channel the Half-Double attack (paper ref
    /// [47]) exploits against TRR-based schemes. Modelling it as an
    /// activation makes that behaviour emergent rather than special-cased.
    fn apply_mitigation_work(
        ledger: &mut HammerLedger,
        refreshes: &[u32],
        copies: &[(u32, u32)],
        now: Cycle,
    ) {
        for &r in refreshes {
            ledger.on_activate(r, now);
        }
        for &(src, dst) in copies {
            // RowClone-style copy: both rows are activated (restored, and
            // their neighbours disturbed once).
            ledger.on_activate(src, now);
            ledger.on_activate(dst, now);
        }
    }

    fn take_issued(&mut self) -> Option<DramCommand> {
        self.issued.take()
    }

    /// One scheduling pass for this channel at `now`: drains `admits`
    /// (local bank, request) pairs, runs the refresh engine over the
    /// channel's ranks, then the FR-FCFS scheduling scan over its active
    /// banks. The mitigation sees bank index `moff + local` — the whole
    /// scheme with `moff = bank_base` (serial), or this channel's piece
    /// with `moff = 0` (sharded).
    pub fn pass(
        &mut self,
        now: Cycle,
        admits: &mut Vec<(usize, QueuedReq)>,
        mit: &mut dyn Mitigation,
        moff: usize,
    ) -> ShardReply {
        let mut progressed = !admits.is_empty();
        for (local, req) in admits.drain(..) {
            self.admit(local, req);
        }

        // Refresh engine: one REF attempt per due rank. JEDEC permits
        // postponing up to 8 REFs, so refresh is opportunistic (fires when
        // the rank happens to be idle) until the debt hits the limit, at
        // which point the controller force-drains the rank.
        for lr in 0..self.ranks {
            let rank = self.grank(lr);
            if !self.lane().refresh_due(rank, now) {
                continue;
            }
            let urgent = self.lane().refresh_urgent(rank, now, &self.timing);
            let mut all_idle = true;
            for b in 0..self.bpr {
                let local = lr * self.bpr + b;
                let bank = self.gbank(local);
                if self.lane().open_row(bank).is_some() {
                    all_idle = false;
                    if !urgent {
                        continue; // postpone: let the open row keep serving
                    }
                    let t = self.lane().earliest_pre(bank, now);
                    if t <= now && self.cmd_ready <= now && self.block_until <= now {
                        self.issue(DramCommand::Pre { bank }, now);
                        progressed = true;
                    }
                }
            }
            // REF rides the same per-channel command bus as everything
            // else: without the claim below, a rank sharing its channel
            // could see a REF and a demand command in the same cycle.
            if all_idle
                && self.lane().earliest_ref(rank, now) <= now
                && self.cmd_ready <= now
                && self.block_until <= now
            {
                // Record which rows this REF covers before issuing.
                let ptr = self.lane().refresh_row_ptr(rank);
                let rows = self.lane().rows_per_ref(rank, &self.timing);
                self.issue(DramCommand::Ref { rank }, now);
                let t = PhaseTimer::start(self.profile.is_some());
                for b in 0..self.bpr {
                    self.ledgers[lr * self.bpr + b].restore_block(ptr, rows);
                }
                t.stop(&mut self.profile, Phase::Ledger);
                // Note: JEDEC allows REF to credit RAA counters, but the
                // paper's evaluation (Eq. 1) derives RFM demand directly as
                // ACT count / RAAIMT, so no REF credit is applied here.
                progressed = true;
            }
        }
        let refresh_cmd = self.take_issued();

        // Per-channel command scheduling, visiting only banks with queued
        // work, a pending RFM, or a row left open under the closed-page
        // policy. Iterating a snapshot of each bitmask word keeps the walk
        // stable while banks deactivate themselves, and preserves the
        // ascending bank order scheduling outcomes depend on (banks on one
        // channel share a command bus).
        let sched = PhaseTimer::start(self.profile.is_some());
        if self.force_full_scan {
            self.active.insert_all();
        }
        for w in 0..self.active.words() {
            let mut bits = self.active.word(w);
            while bits != 0 {
                let local = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // Frontier fast path: a bank whose channel bus is busy, or
                // whose memoized frontier lies beyond `now` with no
                // mitigation consult pending, provably makes no progress
                // and has no side effect in `schedule_bank` — skip the
                // whole decision tree (queue scans, lane timing math).
                // Every skipped bank keeps a non-empty queue or a pending
                // RFM (see `FrontierSlot`), so the deactivation check below
                // is a no-op for it too. The reference engine
                // (`force_full_scan`) bypasses the gate entirely.
                if !self.force_full_scan {
                    if self.cmd_ready > now || self.block_until > now {
                        continue;
                    }
                    let slot = self.frontier[local];
                    if !slot.consult_pending && slot.raw > now && self.slot_valid(local) {
                        continue;
                    }
                }
                if self.schedule_bank(local, now, mit, moff) {
                    progressed = true;
                }
                if self.queues[local].is_empty()
                    && !self
                        .raa
                        .as_ref()
                        .is_some_and(|r| r.needs_rfm(BankId(local as u32)))
                    && (self.page_policy == PagePolicy::Open
                        || self.lane().open_row(self.gbank(local)).is_none())
                {
                    self.active.remove(local);
                }
            }
        }
        sched.stop(&mut self.profile, Phase::Schedule);
        let sched_cmd = self.take_issued();

        ShardReply {
            progressed,
            cmd: refresh_cmd
                .map(|c| (true, c))
                .or(sched_cmd.map(|c| (false, c))),
            completion: self.pending_completion.take(),
            queued: self.queued,
        }
    }

    /// Attempts one command for local bank `local` (the scheduling scan's
    /// per-bank step). Returns true if a command issued.
    fn schedule_bank(
        &mut self,
        local: usize,
        now: Cycle,
        mit: &mut dyn Mitigation,
        moff: usize,
    ) -> bool {
        let bank = self.gbank(local);
        let lbank = BankId(local as u32);
        let mit_bank = moff + local;
        if self.cmd_ready > now || self.block_until > now {
            return false;
        }
        // An urgent refresh drain has absolute priority on its rank;
        // postponable refreshes yield to demand traffic.
        if self
            .lane()
            .refresh_urgent(self.grank(local / self.bpr), now, &self.timing)
        {
            return false;
        }

        // RFM has priority over new ACTs for this bank.
        if self.raa.as_ref().is_some_and(|raa| raa.needs_rfm(lbank)) {
            if self.lane().open_row(bank).is_some() {
                if self.lane().earliest_pre(bank, now) <= now {
                    self.issue(DramCommand::Pre { bank }, now);
                    return true;
                }
                return false;
            }
            if self.lane().earliest_act(bank, now, &self.timing) <= now {
                self.issue(DramCommand::Rfm { bank }, now);
                self.raa.as_mut().expect("raa exists").on_rfm(lbank);
                let t = PhaseTimer::start(self.profile.is_some());
                let action = mit.on_rfm(mit_bank);
                t.stop(&mut self.profile, Phase::Rng);
                let t = PhaseTimer::start(self.profile.is_some());
                Self::apply_mitigation_work(
                    &mut self.ledgers[local],
                    &action.refreshes,
                    &action.copies,
                    now,
                );
                t.stop(&mut self.profile, Phase::Ledger);
                if action.channel_block_ns > 0.0 {
                    let cycles = self.timing.clock.ns_to_cycles(action.channel_block_ns);
                    self.block_until = self.block_until.max(now + cycles);
                    self.blocked_cycles += cycles;
                }
                return true;
            }
            return false;
        }

        if self.queues[local].is_empty() {
            // Closed-page policy: precharge idle-open rows eagerly.
            if self.page_policy == PagePolicy::Closed
                && self.lane().open_row(bank).is_some()
                && self.lane().earliest_pre(bank, now) <= now
            {
                self.issue(DramCommand::Pre { bank }, now);
                return true;
            }
            return false;
        }

        // Open row: serve a row hit (FR-FCFS) if present.
        if let Some(open_da) = self.lane().open_row(bank) {
            let epoch = mit.remap_epoch(mit_bank);
            let tr = PhaseTimer::start(self.profile.is_some());
            let hit_idx = self.queues[local]
                .iter_mut()
                .position(|r| r.da(mit_bank, epoch, mit) == open_da);
            tr.stop(&mut self.profile, Phase::Translate);
            if let Some(idx) = hit_idx {
                let write = self.queues[local][idx].write;
                let t = if write {
                    self.lane().earliest_wr(bank, now, &self.timing)
                } else {
                    self.lane().earliest_rd(bank, now, &self.timing)
                };
                if t <= now {
                    let req = self.queues[local].remove(idx).expect("index valid");
                    self.queued -= 1;
                    let cmd = if write {
                        DramCommand::Wr { bank }
                    } else {
                        DramCommand::Rd { bank }
                    };
                    let res = self.issue(cmd, now);
                    let done = res.done_at.expect("CAS returns done");
                    self.latency.record(done - req.enqueued_at);
                    if req.core != POSTED {
                        debug_assert!(self.pending_completion.is_none());
                        self.pending_completion = Some((done, req.core));
                    }
                    return true;
                }
                return false;
            }
            // Conflict: close the row.
            if self.lane().earliest_pre(bank, now) <= now {
                self.issue(DramCommand::Pre { bank }, now);
                return true;
            }
            return false;
        }

        // Closed bank: activate for the head request, consulting the
        // mitigation once per request (throttle delay, inline TRR, swaps).
        if !self.queues[local].front().expect("non-empty").act_charged {
            let pa_row = self.queues[local].front().expect("head").pa_row;
            let t = PhaseTimer::start(self.profile.is_some());
            let resp = mit.on_activate(mit_bank, pa_row, now);
            t.stop(&mut self.profile, Phase::Rng);
            {
                let head = self.queues[local].front_mut().expect("head");
                head.act_charged = true;
                if resp.delay_cycles > 0 {
                    head.ready_at = now + resp.delay_cycles;
                }
            }
            // The consult can change head readiness (and mitigation state)
            // without committing a command.
            self.touch_bank(local);
            self.throttle_cycles += resp.delay_cycles;
            let t = PhaseTimer::start(self.profile.is_some());
            Self::apply_mitigation_work(
                &mut self.ledgers[local],
                &resp.refreshes,
                &resp.copies,
                now,
            );
            t.stop(&mut self.profile, Phase::Ledger);
            if resp.channel_block_ns > 0.0 {
                let cycles = self.timing.clock.ns_to_cycles(resp.channel_block_ns);
                self.block_until = self.block_until.max(now + cycles);
                self.blocked_cycles += cycles;
            }
        }
        let head_ready = self.queues[local].front().expect("head").ready_at;
        if head_ready > now || self.block_until > now {
            return false;
        }
        if self.lane().earliest_act(bank, now, &self.timing) <= now {
            let epoch = mit.remap_epoch(mit_bank);
            let tr = PhaseTimer::start(self.profile.is_some());
            let (pa_row, da) = {
                let head = self.queues[local].front_mut().expect("head");
                (head.pa_row, head.da(mit_bank, epoch, mit))
            };
            tr.stop(&mut self.profile, Phase::Translate);
            self.issue(DramCommand::Act { bank, row: da }, now);
            let t = PhaseTimer::start(self.profile.is_some());
            self.ledgers[local].on_activate(da, now);
            t.stop(&mut self.profile, Phase::Ledger);
            if let Some(raa) = &mut self.raa {
                if mit.counts_toward_rfm(mit_bank, pa_row) {
                    raa.on_act(lbank);
                }
            }
            return true;
        }
        false
    }

    /// The `now`-independent part of a bank's earliest-event time: every
    /// lane `earliest_*` is `now.max(raw)` with `raw` a pure function of
    /// committed state, so evaluating at `now = 0` yields `raw` itself. The
    /// caller re-applies the `now` bound; see [`FrontierSlot`] for why the
    /// difference never reaches the scheduler.
    ///
    /// Also returns the widest cross-bank coupling the value read — which
    /// `earliest_*` family the taken branch consulted — so the memo can be
    /// pinned at exactly that scope.
    fn bank_frontier_raw(
        &mut self,
        local: usize,
        needs_rfm: bool,
        mit: &mut dyn Mitigation,
        moff: usize,
    ) -> (Cycle, FrontierScope) {
        let bank = self.gbank(local);
        if needs_rfm {
            if self.lane().open_row(bank).is_some() {
                (self.lane().earliest_pre(bank, 0), FrontierScope::Bank)
            } else {
                (
                    self.lane().earliest_act(bank, 0, &self.timing),
                    FrontierScope::Rank,
                )
            }
        } else if let Some(open_da) = self.lane().open_row(bank) {
            let mit_bank = moff + local;
            let tr = PhaseTimer::start(self.profile.is_some());
            let has_hit = {
                let epoch = mit.remap_epoch(mit_bank);
                self.queues[local]
                    .iter_mut()
                    .any(|r| r.da(mit_bank, epoch, mit) == open_da)
            };
            tr.stop(&mut self.profile, Phase::Translate);
            if has_hit {
                (
                    self.lane()
                        .earliest_rd(bank, 0, &self.timing)
                        .min(self.lane().earliest_wr(bank, 0, &self.timing)),
                    FrontierScope::Channel,
                )
            } else {
                (self.lane().earliest_pre(bank, 0), FrontierScope::Bank)
            }
        } else {
            let head_ready = self.queues[local].front().map(|r| r.ready_at).unwrap_or(0);
            (
                self.lane()
                    .earliest_act(bank, 0, &self.timing)
                    .max(head_ready),
                FrontierScope::Rank,
            )
        }
    }

    /// The earliest future cycle at which this shard can act: the minimum
    /// over its active banks' frontiers (memoized) and its ranks' refresh
    /// deadlines. Unclamped — the coordinator applies `max(now + 1)` after
    /// folding in completions and core eligibility.
    pub fn next_min(&mut self, now: Cycle, mit: &mut dyn Mitigation, moff: usize) -> Cycle {
        let sched = PhaseTimer::start(self.profile.is_some());
        let mut next = Cycle::MAX;
        // Only active banks can produce a bank event; the active set is a
        // superset of the banks the full scan would have accepted (it can
        // additionally hold Closed-policy banks with an open row and no
        // queue, which the guard below skips exactly as the full scan did).
        // The reference engine also bypasses the frontier memo so it keeps
        // exercising the original recompute-every-bank path.
        let use_memo = !self.force_full_scan;
        if self.force_full_scan {
            self.active.insert_all();
        }
        let floor = self.cmd_ready.max(self.block_until);
        for w in 0..self.active.words() {
            let mut bits = self.active.word(w);
            while bits != 0 {
                let local = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let needs_rfm = self
                    .raa
                    .as_ref()
                    .is_some_and(|r| r.needs_rfm(BankId(local as u32)));
                if self.queues[local].is_empty() && !needs_rfm {
                    continue;
                }
                let raw = if use_memo {
                    if self.slot_valid(local) {
                        self.frontier[local].raw
                    } else {
                        let (raw, scope) = self.bank_frontier_raw(local, needs_rfm, mit, moff);
                        let consult_pending = !needs_rfm
                            && self.lane().open_row(self.gbank(local)).is_none()
                            && self.queues[local].front().is_some_and(|r| !r.act_charged);
                        self.frontier[local] = FrontierSlot {
                            bank_cmd_seq: self.bank_cmd_seq[local],
                            bank_seq: self.bank_seq[local],
                            coupled_seq: self.coupled_seq(scope, local),
                            raw,
                            scope,
                            consult_pending,
                        };
                        raw
                    }
                } else {
                    self.bank_frontier_raw(local, needs_rfm, mit, moff).0
                };
                next = next.min(raw.max(floor));
            }
        }
        // Refresh deadlines: the lane exposes refresh_due; approximate the
        // next deadline by probing (tREFI granularity keeps this cheap and
        // exact enough).
        for lr in 0..self.ranks {
            let t = if self.lane().refresh_due(self.grank(lr), now) {
                now
            } else {
                let refi = self.timing.t_refi;
                ((now / refi) + 1) * refi
            };
            next = next.min(t);
        }
        sched.stop(&mut self.profile, Phase::Schedule);
        next
    }

    /// Per-bank queue diagnostics for the watchdog's stall snapshot
    /// (global bank ids; only banks with queued work are reported).
    pub fn bank_stalls(&self, out: &mut Vec<BankStall>) {
        for (local, q) in self.queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            out.push(BankStall {
                bank: self.bank_base + local,
                queue_depth: q.len(),
                open_row: self.lane().open_row(self.gbank(local)),
                head_ready_at: q.front().map(|r| r.ready_at).unwrap_or(0),
                rfm_pending: self
                    .raa
                    .as_ref()
                    .is_some_and(|r| r.needs_rfm(BankId(local as u32))),
            });
        }
    }
}
