//! Attacker front-end: drives an [`AttackPattern`] through the memory
//! system as a request stream.
//!
//! Real hammers must defeat row-buffer coalescing: consecutive accesses to
//! one open row are CAS hits and never re-activate. Multi-aggressor
//! patterns alternate rows naturally; single-aggressor patterns interleave
//! a *conflict row* in the same bank (a far row outside every victim
//! neighbourhood), the standard technique.

use shadow_dram::geometry::BankId;
use shadow_dram::mapping::AddressMapper;
use shadow_rh::AttackPattern;
use shadow_workloads::{Request, RequestStream};

/// A core issuing an attack pattern against one bank at full speed.
#[derive(Debug)]
pub struct AttackerCore {
    pattern: AttackPattern,
    mapper: AddressMapper,
    bank: BankId,
    conflict_row: Option<u32>,
    toggle: bool,
}

impl AttackerCore {
    /// Creates an attacker aiming `pattern` at `bank`.
    ///
    /// Single-aggressor patterns automatically interleave the bank's last
    /// row as a conflict row (it sits in the last subarray, away from the
    /// victims of low-numbered aggressors).
    pub fn new(pattern: AttackPattern, mapper: AddressMapper, bank: BankId) -> Self {
        let conflict_row = if pattern.len() == 1 {
            Some(mapper.geometry().rows_per_bank() - 1)
        } else {
            None
        };
        AttackerCore {
            pattern,
            mapper,
            bank,
            conflict_row,
            toggle: false,
        }
    }

    /// Overrides the conflict row (or disables interleaving with `None`).
    #[must_use]
    pub fn with_conflict_row(mut self, row: Option<u32>) -> Self {
        self.conflict_row = row;
        self
    }

    /// The attacked bank.
    pub fn bank(&self) -> BankId {
        self.bank
    }
}

impl RequestStream for AttackerCore {
    fn next_request(&mut self) -> Request {
        self.toggle = !self.toggle;
        let row = match (self.toggle, self.conflict_row) {
            (false, Some(conflict)) => conflict,
            _ => self.pattern.next_target(),
        };
        Request {
            pa: self.mapper.pa_of_row(self.bank, row),
            write: false,
            gap_cycles: 0,
        }
    }

    fn name(&self) -> &str {
        "attacker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_dram::geometry::DramGeometry;

    fn attacker(pattern: AttackPattern) -> AttackerCore {
        let g = DramGeometry::tiny();
        AttackerCore::new(pattern, AddressMapper::new(g), g.bank_id(0, 0, 0))
    }

    #[test]
    fn multi_aggressor_patterns_do_not_interleave() {
        let mut a = attacker(AttackPattern::double_sided(8));
        let g = DramGeometry::tiny();
        let mapper = AddressMapper::new(g);
        let rows: Vec<u64> = (0..4)
            .map(|_| mapper.decode(a.next_request().pa).row as u64)
            .collect();
        assert_eq!(rows, vec![7, 9, 7, 9]);
    }

    #[test]
    fn single_aggressor_gets_conflict_interleave() {
        let mut a = attacker(AttackPattern::single_sided(8));
        let g = DramGeometry::tiny();
        let mapper = AddressMapper::new(g);
        let rows: Vec<u32> = (0..4)
            .map(|_| mapper.decode(a.next_request().pa).row)
            .collect();
        let last = g.rows_per_bank() - 1;
        assert_eq!(rows, vec![8, last, 8, last]);
    }

    #[test]
    fn all_requests_hit_the_target_bank() {
        let mut a = attacker(AttackPattern::many_sided(4, 4));
        let g = DramGeometry::tiny();
        let mapper = AddressMapper::new(g);
        for _ in 0..16 {
            let d = mapper.decode(a.next_request().pa);
            assert_eq!(d.bank, g.bank_id(0, 0, 0));
        }
    }

    #[test]
    fn conflict_override() {
        let mut a = attacker(AttackPattern::single_sided(8)).with_conflict_row(Some(3));
        let g = DramGeometry::tiny();
        let mapper = AddressMapper::new(g);
        let rows: Vec<u32> = (0..2)
            .map(|_| mapper.decode(a.next_request().pa).row)
            .collect();
        assert_eq!(rows, vec![8, 3]);
    }
}
