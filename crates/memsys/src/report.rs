//! Simulation results and the weighted-speedup metrics (§VII-C).

use shadow_rh::BitFlip;
use shadow_sim::profiler::PhaseProfile;
use shadow_sim::stats::{Counter, Histogram};
use shadow_sim::time::Cycle;

/// The outcome of one [`MemSystem`](crate::MemSystem) run.
///
/// `PartialEq` compares every *simulated* field; the engine's determinism
/// tests lean on it to assert two runs are bit-identical. The wall-clock
/// [`profile`](Self::profile) is deliberately excluded — it measures the
/// host, not the simulation, and a profiled run must compare equal to an
/// unprofiled one.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheme name the run used.
    pub scheme: String,
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Per-core workload names.
    pub core_names: Vec<String>,
    /// Per-core completed requests.
    pub completed: Vec<u64>,
    /// Device command counts (ACT/PRE/RD/WR/REF/RFM).
    pub commands: Counter,
    /// Bit-flips recorded per bank.
    pub flips: Vec<Vec<BitFlip>>,
    /// Total cycles channels spent blocked by mitigation actions (RRS).
    pub channel_blocked_cycles: Cycle,
    /// Total ACT delay cycles imposed by throttling (BlockHammer).
    pub throttle_cycles: Cycle,
    /// Memory-request latency (enqueue to data completion), in cycles.
    pub latency: Histogram,
    /// ABO alerts asserted by a PRAC-style mitigation (0 for schemes
    /// without an [`abo`](shadow_mitigations::Mitigation::abo) contract).
    pub abo_events: u64,
    /// Total cycles spent inside ABO recovery RFM commands (tRFM per
    /// RFMAB/RFMSB issued) — the PRAC-era performance tax, separated from
    /// ordinary RFM and REF time.
    pub abo_recovery_cycles: Cycle,
    /// Tracker-entry evictions the mitigation reported
    /// ([`tracker_evictions`](shadow_mitigations::Mitigation::tracker_evictions));
    /// DAPPER's tracker-pressure / performance-attack-resilience metric.
    pub tracker_evictions: u64,
    /// Per-channel count of cycles in which that channel's command bus
    /// issued a command (at most one per channel per cycle, so this is both
    /// a command count and a busy-cycle count). Indexed by channel; the
    /// utilization view behind [`channel_busy_shares`]
    /// (Self::channel_busy_shares) and the sharded engine's load-balance
    /// diagnostics.
    pub channel_busy_cycles: Vec<u64>,
    /// Scheduling passes the run loop executed. Engine diagnostics, not
    /// simulation state: the count depends on which engine ran (the
    /// sharded coordinator and the serial loop pace passes differently),
    /// so it is excluded from `PartialEq` like [`profile`](Self::profile).
    pub sched_passes: u64,
    /// Distinct cycles at which at least one scheduling pass ran. With
    /// [`cycles`](Self::cycles) this yields the skipped-cycle ratio
    /// (`1 - pass_cycles / cycles`), the jump engine's efficiency metric.
    /// Excluded from `PartialEq` like [`profile`](Self::profile).
    pub pass_cycles: u64,
    /// Per-rank count of scheduler bank visits short-circuited by the
    /// hoisted rank-scope gate (refresh urgency / pending ABO recovery),
    /// flattened in global rank order (channel-major). Engine diagnostics
    /// like the pass counters — the count depends on which engine ran —
    /// so excluded from `PartialEq`.
    pub gate_rank_skips: Vec<u64>,
    /// Scheduling passes short-circuited whole by the hoisted channel-scope
    /// bus gate (command bus claimed or channel blocked). Engine
    /// diagnostics; excluded from `PartialEq`.
    pub gate_bus_skips: u64,
    /// Hot-path phase profile: populated only when the run asked for it
    /// (`SystemConfig::profile`) *and* the `profiler` feature is compiled
    /// in. Wall-clock observation only — excluded from `PartialEq`.
    pub profile: Option<PhaseProfile>,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `profile` and the pass counters (engine
        // diagnostics, not simulation state). Destructure so adding a
        // field breaks this visibly.
        let SimReport {
            scheme,
            cycles,
            core_names,
            completed,
            commands,
            flips,
            channel_blocked_cycles,
            throttle_cycles,
            latency,
            abo_events,
            abo_recovery_cycles,
            tracker_evictions,
            channel_busy_cycles,
            sched_passes: _,
            pass_cycles: _,
            gate_rank_skips: _,
            gate_bus_skips: _,
            profile: _,
        } = self;
        *scheme == other.scheme
            && *cycles == other.cycles
            && *core_names == other.core_names
            && *completed == other.completed
            && *commands == other.commands
            && *flips == other.flips
            && *channel_blocked_cycles == other.channel_blocked_cycles
            && *throttle_cycles == other.throttle_cycles
            && *latency == other.latency
            && *abo_events == other.abo_events
            && *abo_recovery_cycles == other.abo_recovery_cycles
            && *tracker_evictions == other.tracker_evictions
            && *channel_busy_cycles == other.channel_busy_cycles
    }
}

impl SimReport {
    /// Total completed requests.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Per-core throughput in requests per kilocycle.
    pub fn throughputs(&self) -> Vec<f64> {
        let c = self.cycles.max(1) as f64;
        self.completed
            .iter()
            .map(|&r| r as f64 * 1000.0 / c)
            .collect()
    }

    /// Total bit-flips across all banks.
    pub fn total_flips(&self) -> usize {
        self.flips.iter().map(|b| b.len()).sum()
    }

    /// Weighted speedup of this run relative to a baseline run of the same
    /// workload mix: `Σ tput_i / Σ_base tput_i` averaged per core
    /// (the relative weighted-speedup normalization of Figures 8–11).
    ///
    /// # Panics
    ///
    /// Panics if the runs have different core counts.
    pub fn relative_performance(&self, baseline: &SimReport) -> f64 {
        assert_eq!(
            self.completed.len(),
            baseline.completed.len(),
            "mismatched core counts"
        );
        let mine = self.throughputs();
        let base = baseline.throughputs();
        let ratios: Vec<f64> = mine
            .iter()
            .zip(&base)
            .map(|(m, b)| if *b > 0.0 { m / b } else { 1.0 })
            .collect();
        ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
    }

    /// The paper's weighted-speedup metric (§VII-C, ref 18):
    /// `WS = Σ_i IPC_i^shared / IPC_i^alone`, with per-core throughput as
    /// the IPC proxy. `alone` holds each core's throughput from a solo run
    /// of its stream on the unprotected baseline.
    ///
    /// # Panics
    ///
    /// Panics if `alone` has the wrong length or a zero entry.
    pub fn weighted_speedup(&self, alone: &[f64]) -> f64 {
        assert_eq!(alone.len(), self.completed.len(), "mismatched core counts");
        self.throughputs()
            .iter()
            .zip(alone)
            .map(|(t, &a)| {
                assert!(a > 0.0, "alone throughput must be positive");
                t / a
            })
            .sum()
    }

    /// Row-buffer hit rate: fraction of CAS commands served without a new
    /// activation, `1 - ACT/(RD+WR)` (clamped at 0 for pathological runs).
    pub fn row_hit_rate(&self) -> f64 {
        let cas = self.commands.get("RD") + self.commands.get("WR");
        if cas == 0 {
            return 0.0;
        }
        (1.0 - self.commands.get("ACT") as f64 / cas as f64).max(0.0)
    }

    /// Per-channel command-bus utilization: the fraction of simulated
    /// cycles each channel spent issuing a command. A strongly skewed
    /// vector means channel sharding has little to parallelize (one shard
    /// does all the work); a flat one means near-ideal shard balance.
    pub fn channel_busy_shares(&self) -> Vec<f64> {
        let c = self.cycles.max(1) as f64;
        self.channel_busy_cycles
            .iter()
            .map(|&b| b as f64 / c)
            .collect()
    }

    /// ACTs per RFM actually observed (sanity metric for RAAIMT behaviour).
    pub fn acts_per_rfm(&self) -> Option<f64> {
        let rfm = self.commands.get("RFM");
        if rfm == 0 {
            None
        } else {
            Some(self.commands.get("ACT") as f64 / rfm as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(completed: Vec<u64>, cycles: Cycle) -> SimReport {
        SimReport {
            scheme: "test".into(),
            cycles,
            core_names: completed.iter().map(|_| "w".into()).collect(),
            completed,
            commands: Counter::new(),
            flips: Vec::new(),
            channel_blocked_cycles: 0,
            throttle_cycles: 0,
            latency: Histogram::new(16, 256),
            abo_events: 0,
            abo_recovery_cycles: 0,
            tracker_evictions: 0,
            channel_busy_cycles: Vec::new(),
            sched_passes: 0,
            pass_cycles: 0,
            gate_rank_skips: Vec::new(),
            gate_bus_skips: 0,
            profile: None,
        }
    }

    #[test]
    fn busy_shares_normalize_by_cycles() {
        let mut r = report(vec![10], 1000);
        r.channel_busy_cycles = vec![250, 500];
        let shares = r.channel_busy_shares();
        assert!((shares[0] - 0.25).abs() < 1e-12);
        assert!((shares[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn profile_is_ignored_by_equality() {
        let a = report(vec![10], 100);
        let mut b = a.clone();
        let mut p = PhaseProfile::new();
        p.record(shadow_sim::profiler::Phase::Schedule, 123);
        b.profile = Some(p);
        assert_eq!(a, b, "wall-clock profile must not break bit-identity");
    }

    #[test]
    fn pass_counters_are_ignored_by_equality() {
        // Pass pacing differs between the serial and sharded coordinators;
        // the counters are diagnostics and must not break bit-identity.
        let a = report(vec![10], 100);
        let mut b = a.clone();
        b.sched_passes = 42;
        b.pass_cycles = 17;
        assert_eq!(a, b, "pass counters must not break bit-identity");
    }

    #[test]
    fn gate_counters_are_ignored_by_equality() {
        // Gate-skip tallies depend on which engine ran (the full-scan
        // reference never takes the hoisted gates); diagnostics only.
        let a = report(vec![10], 100);
        let mut b = a.clone();
        b.gate_rank_skips = vec![3, 9];
        b.gate_bus_skips = 27;
        assert_eq!(a, b, "gate-skip counters must not break bit-identity");
    }

    #[test]
    fn throughput_math() {
        let r = report(vec![1000, 2000], 1_000_000);
        let t = r.throughputs();
        assert!((t[0] - 1.0).abs() < 1e-12);
        assert!((t[1] - 2.0).abs() < 1e-12);
        assert_eq!(r.total_completed(), 3000);
    }

    #[test]
    fn relative_performance_identity() {
        let a = report(vec![1000, 2000], 1_000_000);
        assert!((a.relative_performance(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_performance_detects_slowdown() {
        let base = report(vec![1000, 1000], 1_000_000);
        let slow = report(vec![900, 950], 1_000_000);
        let rel = slow.relative_performance(&base);
        assert!((rel - 0.925).abs() < 1e-12);
    }

    #[test]
    fn same_requests_longer_time_is_slowdown() {
        let base = report(vec![1000], 1_000_000);
        let slow = report(vec![1000], 1_100_000);
        assert!(slow.relative_performance(&base) < 1.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_cores_panic() {
        let a = report(vec![1], 10);
        let b = report(vec![1, 2], 10);
        let _ = a.relative_performance(&b);
    }

    #[test]
    fn acts_per_rfm_none_without_rfm() {
        assert!(report(vec![1], 10).acts_per_rfm().is_none());
    }

    #[test]
    fn row_hit_rate_math() {
        let mut r = report(vec![10], 100);
        r.commands.add("RD", 80);
        r.commands.add("WR", 20);
        r.commands.add("ACT", 25);
        assert!((r.row_hit_rate() - 0.75).abs() < 1e-12);
        let empty = report(vec![1], 10);
        assert_eq!(empty.row_hit_rate(), 0.0);
    }

    #[test]
    fn weighted_speedup_sums_per_core_ratios() {
        let r = report(vec![1000, 500], 1_000_000); // tputs 1.0 and 0.5
        let ws = r.weighted_speedup(&[2.0, 1.0]); // 0.5 + 0.5
        assert!((ws - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn weighted_speedup_rejects_zero_alone() {
        let r = report(vec![10], 100);
        let _ = r.weighted_speedup(&[0.0]);
    }
}
