//! The memory-system engine: FR-FCFS scheduling, refresh, RFM, mitigation
//! hooks, and the fault model, advanced on one deterministic timeline.
//!
//! The engine is channel-sharded: all per-channel scheduler state lives in
//! [`ChannelShard`]s (see `crate::shard`), and [`MemSystem`] is the
//! coordinator — it owns the cores, request admission, the completion event
//! queue, the watchdog, and the device's bookkeeping (stats/history/trace),
//! and it merges each scheduling pass's per-shard results in fixed channel
//! order. Two execution modes run the *same* shard code:
//!
//!  - **serial** (default): one thread iterates shards in channel order,
//!    handing each the whole mitigation with its global bank offset;
//!  - **sharded** ([`SystemConfig::shard_channels`]): persistent worker
//!    threads each own a contiguous range of shards plus those channels'
//!    mitigation pieces ([`Mitigation::split_channels`]), stepping
//!    concurrently and synchronizing at every pass.
//!
//! Because channels share no timing state, mitigation state splits
//! per-channel (per-bank RNG substreams), and the merge replays commands
//! and completions in canonical channel order, the two modes are
//! bit-identical — reports *and* command traces (pinned by the determinism
//! suite and the conformance fuzzer's sharded leg).

use std::sync::mpsc;
use std::thread;

use shadow_dram::device::DramDevice;
use shadow_dram::geometry::DramGeometry;
use shadow_dram::mapping::AddressMapper;
use shadow_dram::rfm::RaaCounters;
use shadow_mitigations::{AboSpec, AnyMitigation, Mitigation};
use shadow_rh::HammerLedger;
use shadow_sim::events::EventQueue;
use shadow_sim::profiler::PhaseProfile;
use shadow_sim::stats::Histogram;
use shadow_sim::time::Cycle;
use shadow_workloads::RequestStream;

use crate::config::SystemConfig;
use crate::cpu::CpuCore;
use crate::error::{BankStall, SimError, StallKind, StallSnapshot};
use crate::report::SimReport;
use crate::shard::{ChannelShard, EngineMode, QueuedReq, ShardReply, NO_EPOCH, POSTED};

/// Coordinator-to-worker message of the sharded engine.
enum WorkerMsg {
    /// Run one scheduling pass at `now`. `admits[k]` holds the admissions
    /// for the worker's k-th owned channel; `replies` arrives empty and is
    /// filled by the worker. Both buffers (outer Vecs included) ride back
    /// in the reply for reuse, keeping the steady state allocation-free.
    Pass {
        now: Cycle,
        admits: Vec<Vec<(usize, QueuedReq)>>,
        replies: Vec<(ShardReply, ShardNext)>,
    },
    /// Run over: the worker returns its shards and mitigation pieces via
    /// the join handle.
    Finish,
}

/// One shard's next-event bounds for one pass (sharded engine).
struct ShardNext {
    /// The shard's `next_min` value (exact wake when the shard is
    /// skippable, legacy-form otherwise).
    next: Cycle,
    /// The legacy-form bound ([`ChannelShard::legacy_next`]); the
    /// coordinator advances by the min of these whenever any shard
    /// reports `!skip_ok`.
    legacy: Cycle,
    /// [`ChannelShard::skip_ok`] after the pass's `next_min`.
    skip_ok: bool,
}

/// One worker's results for one pass.
struct WorkerReply {
    /// First channel this worker owns (workers own contiguous ranges).
    first_ch: usize,
    /// Per owned channel, in channel order: the pass result and the
    /// shard's next-event bounds.
    replies: Vec<(ShardReply, ShardNext)>,
    /// The admission buffers, drained, returned for reuse.
    admits: Vec<Vec<(usize, QueuedReq)>>,
}

/// The assembled memory system.
#[derive(Debug)]
pub struct MemSystem {
    cfg: SystemConfig,
    device: DramDevice,
    mapper: AddressMapper,
    /// The whole mitigation, devirtualized at the assembly boundary
    /// (built-in schemes dispatch by enum tag in the hot loop; unknown
    /// schemes ride the [`AnyMitigation::Dyn`] fallback). In sharded mode
    /// its per-bank state has been drained into `pieces`; only
    /// state-independent scalars (name, RFM interface, RAAIMT) may be read
    /// from it then.
    mitigation: AnyMitigation,
    /// Per-channel mitigation pieces — `Some` exactly when the sharded
    /// engine is selected (see [`MemSystem::sharding_active`]).
    pieces: Option<Vec<AnyMitigation>>,
    shards: Vec<ChannelShard>,
    /// The mitigation's Alert Back-Off contract, captured at assembly
    /// (before a sharded split drains the scheme) for the shards and the
    /// conformance oracle.
    abo_spec: Option<AboSpec>,
    banks_per_channel: usize,
    /// Resolved sharded-engine worker count (1..=channels; unused serial).
    threads: usize,
    cores: Vec<CpuCore>,
    completions: EventQueue<usize>,
    /// Running total of delivered completions (the `done()` fast path —
    /// avoids summing every core each scheduling pass).
    completed_reqs: u64,
    /// Per-channel admission staging: (local bank, request) in admission
    /// order. Filled by the coordinator, drained by the shard's pass.
    admit_bufs: Vec<Vec<(usize, QueuedReq)>>,
    /// Reusable per-pass reply buffer (serial path).
    replies: Vec<ShardReply>,
    /// Cycle of the last delivered completion (watchdog bookkeeping;
    /// observation-only, never read by the scheduler).
    last_completion_at: Cycle,
    /// Cycle of the last committed DRAM command (watchdog bookkeeping).
    last_command_at: Cycle,
    /// Scheduling passes executed (observation-only; jump-efficiency
    /// metric for the hotpath bench).
    sched_passes: u64,
    /// Distinct cycles at which at least one pass ran (observation-only).
    pass_cycles: u64,
    /// Cycle of the most recent pass (`Cycle::MAX` before the first), for
    /// counting `pass_cycles` without a set.
    last_pass_at: Cycle,
    now: Cycle,
}

impl MemSystem {
    /// Assembles a system: one core per stream, the given mitigation.
    ///
    /// Panicking wrapper over [`try_new`](MemSystem::try_new), kept for
    /// test ergonomics and callers whose configs are static.
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] message on any invalid input (empty
    /// `streams`, a config [`SystemConfig::validate`] rejects, an
    /// RFM-based mitigation without a RAAIMT).
    pub fn new(
        cfg: SystemConfig,
        streams: Vec<Box<dyn RequestStream>>,
        mitigation: Box<dyn Mitigation>,
    ) -> Self {
        Self::try_new(cfg, streams, mitigation).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assembles a system: one core per stream, the given mitigation.
    ///
    /// The mitigation's tRCD extension, refresh-rate multiplier and extra
    /// DA rows are applied here. When [`SystemConfig::shard_channels`] is
    /// set, the sharded engine is selected here too — if the config has
    /// more than one channel, the reference engine is not forced, and the
    /// mitigation can split its per-channel state.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when `streams` is empty, when
    /// [`SystemConfig::validate`] rejects `cfg`, or when an RFM-based
    /// mitigation provides no RAAIMT and the config does not override one.
    pub fn try_new(
        cfg: SystemConfig,
        streams: Vec<Box<dyn RequestStream>>,
        mut mitigation: Box<dyn Mitigation>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if streams.is_empty() {
            return Err(SimError::invalid(
                "streams",
                "need at least one core (pass one RequestStream per simulated core)",
            ));
        }
        let mut timing = cfg.timing;
        timing.t_rcd_extra += mitigation.t_rcd_extra_cycles();
        let mult = mitigation.refresh_rate_multiplier().max(1) as u64;
        timing.t_refi = (timing.t_refi / mult).max(timing.t_rfc + 1);

        // Physical geometry: the mitigation may add rows per subarray.
        let phys_geo = DramGeometry {
            rows_per_subarray: mitigation.da_rows_per_subarray(cfg.geometry.rows_per_subarray),
            ..cfg.geometry
        };
        let mut device = DramDevice::new(phys_geo, timing);
        if cfg.trace_depth > 0 {
            device.enable_trace(cfg.trace_depth);
        }
        let banks = phys_geo.total_banks() as usize;
        let channels = phys_geo.channels as usize;
        let banks_per_channel = banks / channels;
        let ranks_per_channel = phys_geo.ranks_per_channel as usize;
        let raaimt = if mitigation.uses_rfm() {
            let v = cfg.raaimt_override.or(mitigation.raaimt()).ok_or_else(|| {
                SimError::invalid(
                    "raaimt",
                    format!(
                        "mitigation {} uses RFM but provides no RAAIMT; \
                         set SystemConfig::raaimt_override",
                        mitigation.name()
                    ),
                )
            })?;
            Some(v)
        } else {
            None
        };
        let make_ledger = || {
            if cfg.force_eager_ledger {
                HammerLedger::new_eager(
                    phys_geo.rows_per_bank(),
                    phys_geo.rows_per_subarray,
                    cfg.rh,
                )
            } else {
                HammerLedger::new(phys_geo.rows_per_bank(), phys_geo.rows_per_subarray, cfg.rh)
            }
        };
        let engine = if cfg.force_full_scan {
            EngineMode::FullScan
        } else if cfg.force_frontier_walk {
            EngineMode::FrontierWalk
        } else {
            EngineMode::Calendar
        };
        // Capture the ABO contract before a sharded split drains the
        // scheme's state (the spec itself is stable, but the capture point
        // is part of the trait's "captured once" contract).
        let abo_spec = mitigation.abo();
        let shards: Vec<ChannelShard> = (0..channels)
            .map(|ch| {
                let mut shard = ChannelShard::new(
                    ch * banks_per_channel,
                    ch * ranks_per_channel,
                    banks_per_channel,
                    ranks_per_channel,
                    cfg.page_policy,
                    engine,
                    cfg.force_linear_frfcfs,
                    !cfg.force_unresolved_calendar,
                    timing,
                    (0..banks_per_channel).map(|_| make_ledger()).collect(),
                    raaimt.map(|r| RaaCounters::new(banks_per_channel, r)),
                    cfg.profile,
                );
                shard.set_abo(abo_spec);
                shard
            })
            .collect();
        // The sharded engine needs per-channel mitigation state; a scheme
        // that cannot split (or a single-channel config, or the reference
        // engine) falls back to serial execution — same results either way.
        let pieces = if cfg.shard_channels && !cfg.force_full_scan && channels > 1 {
            mitigation
                .split_channels(channels, banks_per_channel)
                .map(|ps| ps.into_iter().map(AnyMitigation::from).collect())
        } else {
            None
        };
        let threads = if cfg.shard_threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.shard_threads
        }
        .clamp(1, channels);
        Ok(MemSystem {
            mapper: AddressMapper::new(cfg.geometry),
            cores: streams
                .into_iter()
                .map(|s| CpuCore::new(s, cfg.mlp))
                .collect(),
            completions: EventQueue::new(),
            completed_reqs: 0,
            admit_bufs: (0..channels).map(|_| Vec::new()).collect(),
            replies: Vec::with_capacity(channels),
            banks_per_channel,
            threads,
            shards,
            abo_spec,
            pieces,
            last_completion_at: 0,
            last_command_at: 0,
            sched_passes: 0,
            pass_cycles: 0,
            last_pass_at: Cycle::MAX,
            now: 0,
            cfg,
            device,
            mitigation: AnyMitigation::from(mitigation),
        })
    }

    /// The device (for inspection in tests).
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Drains the collected command trace (oldest first), leaving tracing
    /// enabled. `None` unless the config set a non-zero `trace_depth`.
    pub fn take_trace(&mut self) -> Option<Vec<shadow_dram::trace::CommandRecord>> {
        self.device.take_trace()
    }

    /// The mitigation (for inspection in tests). In sharded mode the live
    /// per-bank state has moved into the per-channel pieces; only
    /// state-independent scalars (name, RFM interface, RAAIMT) are
    /// meaningful then.
    pub fn mitigation(&self) -> &dyn Mitigation {
        &self.mitigation
    }

    /// The mitigation's Alert Back-Off contract as captured at assembly
    /// (valid in sharded mode too, unlike per-bank mitigation state). The
    /// conformance oracle replays recovery timing from this.
    pub fn abo_spec(&self) -> Option<AboSpec> {
        self.abo_spec
    }

    /// Whether this system resolved to the sharded engine (the config
    /// asked for it, the geometry has more than one channel, the reference
    /// engine is not forced, and the mitigation split its state).
    pub fn sharding_active(&self) -> bool {
        self.pieces.is_some()
    }

    /// Resolved sharded-engine worker count (meaningful when
    /// [`sharding_active`](Self::sharding_active); `shard_threads == 0`
    /// auto-detects the host, and any value is clamped to the channels).
    pub fn shard_threads(&self) -> usize {
        self.threads
    }

    /// Bit-flip ledger of (global) `bank`.
    pub fn ledger(&self, bank: usize) -> &HammerLedger {
        &self.shards[bank / self.banks_per_channel].ledgers[bank % self.banks_per_channel]
    }

    fn done(&self) -> bool {
        if self.now >= self.cfg.max_cycles {
            return true;
        }
        self.cfg.target_requests > 0 && self.completed_reqs >= self.cfg.target_requests
    }

    /// Delivers every completion due at `now` (§1 of a scheduling pass).
    fn drain_completions(&mut self, now: Cycle) -> bool {
        let mut progressed = false;
        while let Some((_, core)) = self.completions.pop_due(now) {
            self.cores[core].complete();
            self.completed_reqs += 1;
            self.last_completion_at = now;
            progressed = true;
        }
        progressed
    }

    /// Admits eligible core requests into the per-channel staging buffers
    /// (§2 of a scheduling pass), in core order — the global admission
    /// order both engines share. Translation is deferred to the owning
    /// shard (`NO_EPOCH`): the coordinator has no mitigation to consult in
    /// sharded mode, and `Mitigation::translate` is a pure lookup, so the
    /// first in-shard `da()` call yields the identical row.
    fn admit(&mut self, now: Cycle) -> bool {
        let mut progressed = false;
        for i in 0..self.cores.len() {
            while self.cores[i].can_issue(now) {
                let req = self.cores[i].issue(now);
                let d = self.mapper.decode(req.pa);
                // Posted writes retire at the controller without waiting
                // for DRAM; the completion is delivered through the event
                // queue (next scheduling pass) so admission stays bounded
                // by the MLP window within one pass.
                let core = if req.write && self.cfg.posted_writes {
                    self.completions.schedule(now, i);
                    POSTED
                } else {
                    i
                };
                let bankno = d.bank.0 as usize;
                self.admit_bufs[bankno / self.banks_per_channel].push((
                    bankno % self.banks_per_channel,
                    QueuedReq {
                        core,
                        pa_row: d.row,
                        write: req.write,
                        enqueued_at: now,
                        ready_at: now,
                        act_charged: false,
                        cached_da: 0,
                        cached_epoch: NO_EPOCH,
                        seq: 0,
                    },
                ));
                progressed = true;
            }
        }
        progressed
    }

    /// One serial scheduling pass at `self.now`. Returns true if any
    /// command, completion, admission, or mitigation consult happened.
    fn step_serial(&mut self) -> bool {
        let now = self.now;
        let mut progressed = self.drain_completions(now);
        progressed |= self.admit(now);
        let MemSystem {
            shards,
            admit_bufs,
            mitigation,
            replies,
            device,
            completions,
            last_command_at,
            ..
        } = self;
        replies.clear();
        let mit = &mut *mitigation;
        for (shard, bufs) in shards.iter_mut().zip(admit_bufs.iter_mut()) {
            let moff = shard.bank_base();
            replies.push(shard.pass(now, bufs, mit, moff));
        }
        // Canonical merge: refresh-phase commands in channel order, then
        // scheduler-phase commands in channel order — the exact global
        // order of the pre-sharding engine (§3 walked ranks channel-major,
        // §4 walked banks channel-major, and a channel issues at most one
        // command per cycle). CAS completions land afterwards, preserving
        // the event queue's FIFO tie-break for equal-cycle entries.
        for r in replies.iter() {
            if let Some((true, cmd)) = r.cmd {
                device.record(cmd, now);
                *last_command_at = now;
            }
        }
        for r in replies.iter() {
            if let Some((false, cmd)) = r.cmd {
                device.record(cmd, now);
                *last_command_at = now;
            }
        }
        for r in replies.iter() {
            if let Some((at, core)) = r.completion {
                completions.schedule(at, core);
            }
            progressed |= r.progressed;
        }
        progressed
    }

    /// The earliest future cycle at which anything can happen (serial).
    fn next_event_after_serial(&mut self, now: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        if let Some(t) = self.completions.next_at() {
            next = next.min(t);
        }
        for c in &self.cores {
            if let Some(t) = c.next_eligible() {
                next = next.min(t);
            }
        }
        let MemSystem {
            shards, mitigation, ..
        } = self;
        let mit = &mut *mitigation;
        // A shard needing per-pass examination (an armed consult, a
        // Closed-policy eager-PRE bank) inherited its visit cadence from
        // the global crawl — the 1-cycle refresh pins of *other* shards
        // included — so the calendar engine's exact wake bounds are only
        // sound for the clock advance when every shard is skippable.
        // Otherwise fall back to the min of the legacy-form bounds, which
        // reproduces the walk engine's cadence exactly.
        let mut exact_min = Cycle::MAX;
        let mut legacy_min = Cycle::MAX;
        let mut all_skip = true;
        for shard in shards.iter_mut() {
            let moff = shard.bank_base();
            exact_min = exact_min.min(shard.next_min(now, mit, moff));
            legacy_min = legacy_min.min(shard.legacy_next());
            all_skip &= shard.skip_ok();
        }
        next = next.min(if all_skip { exact_min } else { legacy_min });
        next.max(now + 1)
    }

    /// How many consecutive same-cycle scheduling passes the watchdog
    /// tolerates before declaring a stuck-at-cycle loop. A legitimate
    /// repeat chain is bounded by the completions deliverable at one cycle
    /// (≤ cores × MLP per pass), so this is orders of magnitude above any
    /// real run.
    const STUCK_PASS_LIMIT: u64 = 1_000_000;

    /// Builds the watchdog's diagnostic snapshot of the controller state.
    /// Requires the shards to hold their lanes (i.e. called during a run,
    /// or after the sharded engine reclaimed its workers).
    fn stall_snapshot(&self, kind: StallKind) -> Box<StallSnapshot> {
        let mut banks: Vec<BankStall> = Vec::new();
        for shard in &self.shards {
            shard.bank_stalls(&mut banks);
        }
        banks.sort_by(|a, b| b.queue_depth.cmp(&a.queue_depth).then(a.bank.cmp(&b.bank)));
        let queued_requests = banks.iter().map(|b| b.queue_depth).sum();
        banks.truncate(StallSnapshot::MAX_BANKS);
        let trace_tail = self
            .device
            .trace()
            .map(|t| {
                let skip = t.len().saturating_sub(StallSnapshot::MAX_TRACE_TAIL);
                t.iter()
                    .skip(skip)
                    .map(|r| format!("@{} {:?}", r.cycle, r.cmd))
                    .collect()
            })
            .unwrap_or_default();
        Box::new(StallSnapshot {
            kind,
            cycle: self.now,
            window: self.cfg.watchdog_window,
            last_completion_at: self.last_completion_at,
            last_command_at: self.last_command_at,
            completed_requests: self.completed_reqs,
            queued_requests,
            channel_blocked_cycles: self.shards.iter().map(|s| s.blocked_cycles).sum(),
            throttle_cycles: self.shards.iter().map(|s| s.throttle_cycles).sum(),
            banks,
            trace_tail,
        })
    }

    /// Watchdog decision, evaluated whenever `now` advances. Returns the
    /// stall kind once no request has completed for a full window *while
    /// requests sit queued* (an idle system with empty queues is
    /// legitimately quiet, not stalled). Purely observational: it reads
    /// committed state only, so a run it never aborts is bit-identical to
    /// one with the watchdog disabled. `any_queued` comes from the shards
    /// (serial) or the last pass's replies (sharded) — same value, since
    /// queue state only changes inside passes.
    fn watchdog_kind(&mut self, any_queued: bool) -> Option<StallKind> {
        let window = self.cfg.watchdog_window;
        if window == 0 || self.now.saturating_sub(self.last_completion_at) < window {
            return None;
        }
        if !any_queued {
            // Nothing in flight: push the watermark forward so a long idle
            // stretch can't masquerade as a stall once work resumes.
            self.last_completion_at = self.now;
            return None;
        }
        Some(if self.now.saturating_sub(self.last_command_at) >= window {
            StallKind::Livelock
        } else {
            StallKind::Starvation
        })
    }

    /// Runs to the configured request target or cycle limit and reports.
    ///
    /// Panicking wrapper over [`run_checked`](MemSystem::run_checked):
    /// with the watchdog disabled (`watchdog_window == 0`, every preset's
    /// default) it cannot fail and behaves exactly as it always did.
    ///
    /// # Panics
    ///
    /// Panics with the stall diagnosis if the watchdog is enabled and
    /// fires; callers that enable it should prefer `run_checked`.
    pub fn run(&mut self) -> SimReport {
        self.run_checked().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs to the configured request target or cycle limit and reports,
    /// with the forward-progress watchdog armed when
    /// [`SystemConfig::watchdog_window`] is non-zero.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] with a [`StallSnapshot`] when the watchdog
    /// detects a livelock, completion starvation, or a stuck-at-cycle
    /// repeat loop. On the non-stalling path the report is bit-identical
    /// to a watchdog-free run (the determinism suite pins this).
    pub fn run_checked(&mut self) -> Result<SimReport, SimError> {
        // Move each channel's device-timing state into its shard for the
        // run; restored on every exit so post-run device inspection
        // (trace, open rows) keeps working.
        let lanes = self.device.take_lanes();
        for (shard, lane) in self.shards.iter_mut().zip(lanes) {
            shard.lane = Some(lane);
        }
        let result = if self.pieces.is_some() {
            self.run_sharded()
        } else {
            self.run_serial()
        };
        let lanes = self
            .shards
            .iter_mut()
            .map(|s| s.lane.take().expect("lane present after run"))
            .collect();
        self.device.restore_lanes(lanes);
        result.map(|()| self.report())
    }

    /// Observation-only pass accounting (jump-efficiency metrics).
    #[inline]
    fn count_pass(&mut self) {
        self.sched_passes += 1;
        if self.last_pass_at != self.now {
            self.last_pass_at = self.now;
            self.pass_cycles += 1;
        }
    }

    /// First-class watchdog event: with the window armed and requests
    /// queued, the deadline `last_completion_at + window` is itself an
    /// event. When it falls strictly between `now` and the next natural
    /// wake `next`, the run jumps straight to the deadline and the
    /// watchdog fires there — no scheduling pass runs at that cycle, so
    /// nothing simulated can diverge. On a run the old
    /// check-at-natural-wakes watchdog would not have aborted, the clamp
    /// is never taken: the deadline either falls at/after `next`, or the
    /// wake at `next` would have fired the same abort (queue state only
    /// changes inside passes, and `next` is the minimum over completions,
    /// so none can land in between). Returns the stall verdict when the
    /// clamp fires.
    fn watchdog_deadline(&mut self, any_queued: bool, next: Cycle) -> Option<StallKind> {
        if self.cfg.watchdog_window == 0 || !any_queued {
            return None;
        }
        let deadline = self
            .last_completion_at
            .saturating_add(self.cfg.watchdog_window);
        if deadline > self.now && deadline < next {
            self.now = deadline;
            let kind = self.watchdog_kind(true);
            debug_assert!(kind.is_some(), "the watchdog fires at its own deadline");
            return kind;
        }
        None
    }

    fn run_serial(&mut self) -> Result<(), SimError> {
        let mut passes_at_now: u64 = 0;
        while !self.done() {
            self.count_pass();
            let progressed = self.step_serial();
            // A pass can enable further work at the same cycle only by
            // delivering a completion scheduled *at* `now` (posted writes;
            // CAS completions always land in the future): admissions are
            // exhausted within a pass unless a completion reopens an MLP
            // window, every committed command claims its channel's command
            // bus for the rest of this cycle, and no timing constraint
            // couples banks across channels — so a bank that could not
            // issue in this pass cannot issue later in the same cycle
            // either, and a mitigation consult never waits for a later
            // pass (the gate's floor check blocks claimed channels in both
            // passes alike). The reference engine keeps the naive
            // repeat-while-progress loop, so the differential harness pins
            // this short-circuit cell for cell.
            let repeat = progressed
                && (self.cfg.force_full_scan || self.completions.next_at() == Some(self.now));
            // The `done()` guard matches the naive loop's exit shape: there,
            // the terminal pass progresses and the loop exits at the top
            // before any no-progress pass can advance `now` — so the
            // reported cycle count must not include a post-completion jump.
            if !repeat && !self.done() {
                let next = self
                    .next_event_after_serial(self.now)
                    .min(self.cfg.max_cycles);
                let any_queued = self.shards.iter().any(|s| s.queued() > 0);
                if let Some(kind) = self.watchdog_deadline(any_queued, next) {
                    return Err(SimError::Stalled(self.stall_snapshot(kind)));
                }
                self.now = next;
                passes_at_now = 0;
                if let Some(kind) = self.watchdog_kind(any_queued) {
                    return Err(SimError::Stalled(self.stall_snapshot(kind)));
                }
            } else if repeat && self.cfg.watchdog_window > 0 {
                passes_at_now += 1;
                if passes_at_now >= Self::STUCK_PASS_LIMIT {
                    return Err(SimError::Stalled(
                        self.stall_snapshot(StallKind::StuckCycle),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The sharded run loop: persistent workers each step a contiguous
    /// range of channels; the coordinator synchronizes every pass and
    /// merges results in canonical channel order (bit-identical to
    /// [`run_serial`](Self::run_serial) — see the module docs).
    fn run_sharded(&mut self) -> Result<(), SimError> {
        let channels = self.shards.len();
        let threads = self.threads.clamp(1, channels);
        let mut shards: Vec<ChannelShard> = std::mem::take(&mut self.shards);
        let mut pieces: Vec<AnyMitigation> = self.pieces.take().expect("sharded mode has pieces");
        // Worker w owns `base` channels plus one of the remainder.
        let base = channels / threads;
        let extra = channels % threads;
        let (reply_tx, reply_rx) = mpsc::channel::<WorkerReply>();
        let mut stall: Option<StallKind> = None;

        thread::scope(|s| {
            let mut senders = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            {
                let mut shard_iter = shards.drain(..);
                let mut piece_iter = pieces.drain(..);
                let mut first_ch = 0usize;
                for w in 0..threads {
                    let count = base + usize::from(w < extra);
                    let my_shards: Vec<ChannelShard> = shard_iter.by_ref().take(count).collect();
                    let my_pieces: Vec<AnyMitigation> = piece_iter.by_ref().take(count).collect();
                    let (tx, rx) = mpsc::channel::<WorkerMsg>();
                    let my_reply_tx = reply_tx.clone();
                    let my_first = first_ch;
                    first_ch += count;
                    handles.push(s.spawn(move || {
                        let mut shards = my_shards;
                        let mut pieces = my_pieces;
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                WorkerMsg::Pass {
                                    now,
                                    mut admits,
                                    mut replies,
                                } => {
                                    debug_assert!(replies.is_empty());
                                    for (k, shard) in shards.iter_mut().enumerate() {
                                        let reply =
                                            shard.pass(now, &mut admits[k], &mut pieces[k], 0);
                                        // Filling the frontier memo every
                                        // pass (the serial loop fills it
                                        // only before a time jump) is
                                        // observation-only: slots are
                                        // validated by sequence counters,
                                        // so scheduling reads identical
                                        // values either way.
                                        let next = shard.next_min(now, &mut pieces[k], 0);
                                        replies.push((
                                            reply,
                                            ShardNext {
                                                next,
                                                legacy: shard.legacy_next(),
                                                skip_ok: shard.skip_ok(),
                                            },
                                        ));
                                    }
                                    let reply = WorkerReply {
                                        first_ch: my_first,
                                        replies,
                                        admits,
                                    };
                                    if my_reply_tx.send(reply).is_err() {
                                        break;
                                    }
                                }
                                WorkerMsg::Finish => break,
                            }
                        }
                        (shards, pieces)
                    }));
                    senders.push(tx);
                }
            }
            drop(reply_tx);

            let mut passes_at_now: u64 = 0;
            let mut pass_replies: Vec<Option<(ShardReply, ShardNext)>> =
                (0..channels).map(|_| None).collect();
            // Buffer pool for the per-pass messages: the outer admits Vec
            // and the reply Vec ping-pong through the channel alongside the
            // admission buffers, so the steady-state pass loop allocates
            // nothing (~2.3M passes on the dense bench slice).
            type SpareBufs = (Vec<Vec<(usize, QueuedReq)>>, Vec<(ShardReply, ShardNext)>);
            let mut spare: Vec<SpareBufs> = (0..threads)
                .map(|_| (Vec::with_capacity(base + 1), Vec::with_capacity(base + 1)))
                .collect();
            while !self.done() {
                self.count_pass();
                let now = self.now;
                let mut progressed = self.drain_completions(now);
                progressed |= self.admit(now);
                // Fan the pass out with each worker's admission buffers.
                let mut ch = 0usize;
                for (w, tx) in senders.iter().enumerate() {
                    let count = base + usize::from(w < extra);
                    let (mut admits, replies) = spare.pop().expect("one spare per worker");
                    admits.extend(
                        self.admit_bufs[ch..ch + count]
                            .iter_mut()
                            .map(std::mem::take),
                    );
                    ch += count;
                    tx.send(WorkerMsg::Pass {
                        now,
                        admits,
                        replies,
                    })
                    .expect("worker alive");
                }
                // Barrier: collect every worker's reply, slotting results
                // (and the returned buffers) by channel.
                for _ in 0..threads {
                    let mut reply = reply_rx.recv().expect("worker alive");
                    for (k, buf) in reply.admits.drain(..).enumerate() {
                        self.admit_bufs[reply.first_ch + k] = buf;
                    }
                    for (k, r) in reply.replies.drain(..).enumerate() {
                        pass_replies[reply.first_ch + k] = Some(r);
                    }
                    spare.push((reply.admits, reply.replies));
                }
                // Canonical merge, exactly as the serial pass: refresh
                // commands channel-ascending, scheduler commands
                // channel-ascending, then CAS completions.
                for slot in pass_replies.iter() {
                    let (r, _) = slot.as_ref().expect("every channel replied");
                    if let Some((true, cmd)) = r.cmd {
                        self.device.record(cmd, now);
                        self.last_command_at = now;
                    }
                }
                for slot in pass_replies.iter() {
                    let (r, _) = slot.as_ref().expect("filled");
                    if let Some((false, cmd)) = r.cmd {
                        self.device.record(cmd, now);
                        self.last_command_at = now;
                    }
                }
                // Same fallback rule as `next_event_after_serial`: the
                // exact wake bounds drive the clock only when every shard
                // is skippable; otherwise the legacy-form min reproduces
                // the walk engine's crawl cadence for the shard that
                // needs per-pass examination.
                let mut exact_min = Cycle::MAX;
                let mut legacy_min = Cycle::MAX;
                let mut all_skip = true;
                let mut queued_total = 0usize;
                for slot in pass_replies.iter_mut() {
                    let (r, sn) = slot.take().expect("filled");
                    if let Some((at, core)) = r.completion {
                        self.completions.schedule(at, core);
                    }
                    progressed |= r.progressed;
                    queued_total += r.queued;
                    exact_min = exact_min.min(sn.next);
                    legacy_min = legacy_min.min(sn.legacy);
                    all_skip &= sn.skip_ok;
                }
                let shard_next = if all_skip { exact_min } else { legacy_min };
                // Advance exactly as the serial loop does (the sharded
                // engine never runs with force_full_scan).
                let repeat = progressed && self.completions.next_at() == Some(self.now);
                if !repeat && !self.done() {
                    let mut next = shard_next;
                    if let Some(t) = self.completions.next_at() {
                        next = next.min(t);
                    }
                    for c in &self.cores {
                        if let Some(t) = c.next_eligible() {
                            next = next.min(t);
                        }
                    }
                    let next = next.max(now + 1).min(self.cfg.max_cycles);
                    if let Some(kind) = self.watchdog_deadline(queued_total > 0, next) {
                        stall = Some(kind);
                        break;
                    }
                    self.now = next;
                    passes_at_now = 0;
                    if let Some(kind) = self.watchdog_kind(queued_total > 0) {
                        stall = Some(kind);
                        break;
                    }
                } else if repeat && self.cfg.watchdog_window > 0 {
                    passes_at_now += 1;
                    if passes_at_now >= Self::STUCK_PASS_LIMIT {
                        stall = Some(StallKind::StuckCycle);
                        break;
                    }
                }
            }
            // Wind down: reclaim shards and pieces in channel order
            // (workers own contiguous ranges, handles are in worker order).
            for tx in &senders {
                let _ = tx.send(WorkerMsg::Finish);
            }
            drop(senders);
            for h in handles {
                let (s_vec, p_vec) = h.join().expect("worker panicked");
                shards.extend(s_vec);
                pieces.extend(p_vec);
            }
        });

        self.shards = shards;
        self.pieces = Some(pieces);
        match stall {
            Some(kind) => Err(SimError::Stalled(self.stall_snapshot(kind))),
            None => Ok(()),
        }
    }

    /// Assembles the final [`SimReport`], merging per-shard state in fixed
    /// channel order (exact: histogram merge is element-wise, sums are
    /// integer, flips concatenate in global bank order).
    fn report(&self) -> SimReport {
        let mut latency = Histogram::new(16, 256);
        let mut blocked: Cycle = 0;
        let mut throttle: Cycle = 0;
        let mut busy = Vec::with_capacity(self.shards.len());
        let mut flips = Vec::new();
        let mut profile: Option<PhaseProfile> = None;
        let mut abo_events: u64 = 0;
        let mut abo_recovery_cycles: Cycle = 0;
        let mut gate_rank_skips: Vec<u64> = Vec::new();
        let mut gate_bus_skips: u64 = 0;
        for shard in &self.shards {
            latency.merge(&shard.latency);
            blocked += shard.blocked_cycles;
            throttle += shard.throttle_cycles;
            busy.push(shard.busy_cycles);
            abo_events += shard.abo_events;
            abo_recovery_cycles += shard.abo_recovery_cycles;
            gate_rank_skips.extend_from_slice(&shard.rank_gate_skips);
            gate_bus_skips += shard.bus_gate_skips;
            for l in &shard.ledgers {
                flips.push(l.flips().to_vec());
            }
            if let Some(p) = &shard.profile {
                profile.get_or_insert_with(PhaseProfile::new).merge(p);
            }
        }
        // Tracker state lives in the per-channel pieces when sharded.
        let tracker_evictions = match &self.pieces {
            Some(pieces) => pieces.iter().map(|p| p.tracker_evictions()).sum(),
            None => self.mitigation.tracker_evictions(),
        };
        SimReport {
            scheme: self.mitigation.name().to_string(),
            cycles: self.now,
            core_names: self.cores.iter().map(|c| c.name().to_string()).collect(),
            completed: self.cores.iter().map(|c| c.completed()).collect(),
            commands: self.device.stats().clone(),
            flips,
            channel_blocked_cycles: blocked,
            throttle_cycles: throttle,
            latency,
            abo_events,
            abo_recovery_cycles,
            tracker_evictions,
            channel_busy_cycles: busy,
            sched_passes: self.sched_passes,
            pass_cycles: self.pass_cycles,
            gate_rank_skips,
            gate_bus_skips,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::bank::ShadowConfig;
    use shadow_core::timing::ShadowTiming;
    use shadow_dram::command::DramCommand;
    use shadow_dram::geometry::BankId;
    use shadow_mitigations::{Drr, NoMitigation, Parfm, ShadowMitigation};
    use shadow_workloads::{AppProfile, ProfileStream, RandomStream};

    fn one_stream(cfg: &SystemConfig, seed: u64) -> Vec<Box<dyn RequestStream>> {
        vec![Box::new(RandomStream::new(
            cfg.capacity_bytes().max(1 << 20),
            seed,
        ))]
    }

    #[test]
    fn baseline_completes_requests() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 1), Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(r.total_completed() >= cfg.target_requests);
        assert!(r.commands.get("ACT") > 0);
        assert!(r.commands.get("RD") > 0);
        assert_eq!(r.commands.get("RFM"), 0, "no RFM without an RFM scheme");
    }

    #[test]
    fn refresh_happens() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 2), Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(
            r.commands.get("REF") > 0,
            "no refreshes in {} cycles",
            r.cycles
        );
    }

    #[test]
    fn drr_doubles_refresh_rate() {
        let cfg = SystemConfig::tiny();
        let base = MemSystem::new(cfg, one_stream(&cfg, 3), Box::new(NoMitigation::new())).run();
        let drr = MemSystem::new(cfg, one_stream(&cfg, 3), Box::new(Drr::new())).run();
        let per_cycle_base = base.commands.get("REF") as f64 / base.cycles as f64;
        let per_cycle_drr = drr.commands.get("REF") as f64 / drr.cycles as f64;
        let ratio = per_cycle_drr / per_cycle_base;
        assert!((1.7..2.4).contains(&ratio), "REF rate ratio {ratio}");
    }

    #[test]
    fn rfm_scheme_triggers_rfms() {
        let cfg = SystemConfig::tiny();
        let rh = cfg.rh;
        let parfm = Parfm::new(cfg.geometry.total_banks() as usize, rh, 16, 7)
            .with_rows_per_subarray(cfg.geometry.rows_per_subarray);
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 4), Box::new(parfm));
        let r = sys.run();
        assert!(r.commands.get("RFM") > 0, "RFM never issued");
        // RAAIMT=16: roughly one RFM per 16 ACTs.
        let apr = r.acts_per_rfm().unwrap();
        assert!((10.0..30.0).contains(&apr), "ACTs per RFM = {apr}");
    }

    fn shadow_with_raaimt(cfg: &SystemConfig, raaimt: u32) -> ShadowMitigation {
        let scfg = ShadowConfig {
            subarrays: cfg.geometry.subarrays_per_bank,
            rows_per_subarray: cfg.geometry.rows_per_subarray,
        };
        ShadowMitigation::new(
            cfg.geometry.total_banks() as usize,
            scfg,
            raaimt,
            &cfg.timing,
            &ShadowTiming::paper_default(),
            99,
        )
    }

    fn shadow_for(cfg: &SystemConfig) -> ShadowMitigation {
        shadow_with_raaimt(cfg, 16)
    }

    #[test]
    fn shadow_runs_and_shuffles() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 5), Box::new(shadow_for(&cfg)));
        let r = sys.run();
        assert!(r.commands.get("RFM") > 0);
        assert!(r.total_completed() >= cfg.target_requests);
    }

    #[test]
    fn shadow_slows_down_modestly() {
        // tRCD' and RFM work must cost something, but not catastrophically.
        let cfg = SystemConfig::tiny();
        let base = MemSystem::new(cfg, one_stream(&cfg, 6), Box::new(NoMitigation::new())).run();
        let sh = MemSystem::new(cfg, one_stream(&cfg, 6), Box::new(shadow_for(&cfg))).run();
        let rel = sh.relative_performance(&base);
        assert!(rel < 1.0, "SHADOW cannot be free (rel = {rel})");
        assert!(rel > 0.5, "SHADOW overhead implausibly high (rel = {rel})");
    }

    #[test]
    fn single_sided_hammer_flips_baseline_but_not_shadow() {
        // An attacker hammering one row must flip victims on the
        // unprotected system; SHADOW's shuffling + incremental refresh must
        // prevent it at the same ACT budget.
        #[derive(Debug)]
        struct Hammer {
            pas: [u64; 2],
            i: usize,
        }
        impl RequestStream for Hammer {
            fn next_request(&mut self) -> shadow_workloads::Request {
                self.i ^= 1;
                shadow_workloads::Request {
                    pa: self.pas[self.i],
                    write: false,
                    gap_cycles: 0,
                }
            }
            fn name(&self) -> &str {
                "hammer"
            }
        }
        let mut cfg = SystemConfig::tiny();
        cfg.target_requests = 0;
        cfg.max_cycles = 3_000_000;
        // Double-sided hammer around row 8 of bank 0 (16-row subarrays):
        // alternating rows 7 and 9 forces an ACT per access.
        let mapper = AddressMapper::new(cfg.geometry);
        let bank = cfg.geometry.bank_id(0, 0, 0);
        let pas = [mapper.pa_of_row(bank, 7), mapper.pa_of_row(bank, 9)];

        let mut base_sys = MemSystem::new(
            cfg,
            vec![Box::new(Hammer { pas, i: 0 })],
            Box::new(NoMitigation::new()),
        );
        let base = base_sys.run();
        assert!(base.total_flips() > 0, "baseline should flip (H_cnt=64)");

        // The tiny parameters (H_cnt = 64, N_row = 16) sit far off Table
        // II's secure diagonal at RAAIMT 16, so use the proportionally
        // secure RAAIMT = 4 (H_cnt / RAAIMT = 16 = N_row) and require a
        // dramatic reduction rather than perfection.
        let mut shadow_cfg = cfg;
        shadow_cfg.raaimt_override = Some(4);
        let mut sh_sys = MemSystem::new(
            shadow_cfg,
            vec![Box::new(Hammer { pas, i: 0 })],
            Box::new(shadow_with_raaimt(&shadow_cfg, 4)),
        );
        let sh = sh_sys.run();
        assert!(
            sh.total_flips() * 50 < base.total_flips(),
            "SHADOW must suppress the double-sided hammer ({} vs {} flips)",
            sh.total_flips(),
            base.total_flips()
        );
    }

    #[test]
    fn spec_mix_runs_on_ddr4() {
        let mut cfg = SystemConfig::ddr4_actual_system();
        cfg.target_requests = 5_000;
        let streams: Vec<Box<dyn RequestStream>> = vec![
            Box::new(ProfileStream::new(
                AppProfile::spec_high()[0],
                cfg.capacity_bytes(),
                1,
            )),
            Box::new(ProfileStream::new(
                AppProfile::spec_low()[0],
                cfg.capacity_bytes(),
                2,
            )),
        ];
        let mut sys = MemSystem::new(cfg, streams, Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(r.total_completed() >= 5_000);
        // The memory-bound core completes far more than the compute-bound.
        assert!(r.completed[0] > r.completed[1] * 5);
    }

    #[test]
    fn posted_writes_never_stall_cores() {
        // A write-heavy stream should finish sooner with posted writes.
        #[derive(Debug)]
        struct WriteHeavy {
            rng: shadow_sim::rng::Xoshiro256,
        }
        impl RequestStream for WriteHeavy {
            fn next_request(&mut self) -> shadow_workloads::Request {
                let pa = self.rng.gen_range(0, 1 << 14) * 64;
                shadow_workloads::Request {
                    pa,
                    write: true,
                    gap_cycles: 0,
                }
            }
            fn name(&self) -> &str {
                "write-heavy"
            }
        }
        let make = || -> Vec<Box<dyn RequestStream>> {
            vec![Box::new(WriteHeavy {
                rng: shadow_sim::rng::Xoshiro256::seed_from_u64(4),
            })]
        };
        let cfg = SystemConfig::tiny();
        let mut posted_cfg = cfg;
        posted_cfg.posted_writes = true;
        let plain = MemSystem::new(cfg, make(), Box::new(NoMitigation::new())).run();
        let posted = MemSystem::new(posted_cfg, make(), Box::new(NoMitigation::new())).run();
        assert!(
            posted.cycles <= plain.cycles,
            "posted writes slower ({} vs {})",
            posted.cycles,
            plain.cycles
        );
        assert!(posted.total_completed() >= cfg.target_requests);
    }

    #[test]
    fn latency_histogram_populated_and_plausible() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 21), Box::new(NoMitigation::new()));
        let r = sys.run();
        // CAS-issued requests whose data lands after the stop condition are
        // recorded but not completed, so the histogram may lead slightly.
        assert!(r.latency.count() >= r.total_completed());
        assert!(r.latency.count() <= r.total_completed() + (cfg.mlp as u64));
        let tp = cfg.timing;
        // Every request needs at least the CAS-to-data time.
        assert!(r.latency.mean() >= (tp.t_cl + tp.t_bl) as f64);
        assert!(r.latency.percentile(50.0) > 0);
    }

    #[test]
    fn closed_page_policy_precharges_more() {
        let cfg_open = SystemConfig::tiny();
        let mut cfg_closed = SystemConfig::tiny();
        cfg_closed.page_policy = crate::config::PagePolicy::Closed;
        let seq: Vec<Box<dyn RequestStream>> =
            vec![Box::new(shadow_workloads::ProfileStream::new(
                shadow_workloads::AppProfile::spec_low()[1], // imagick: high locality
                1 << 20,
                3,
            ))];
        let open = MemSystem::new(cfg_open, seq, Box::new(NoMitigation::new())).run();
        let seq2: Vec<Box<dyn RequestStream>> =
            vec![Box::new(shadow_workloads::ProfileStream::new(
                shadow_workloads::AppProfile::spec_low()[1],
                1 << 20,
                3,
            ))];
        let closed = MemSystem::new(cfg_closed, seq2, Box::new(NoMitigation::new())).run();
        let pre_rate_open = open.commands.get("PRE") as f64 / open.commands.get("RD").max(1) as f64;
        let pre_rate_closed =
            closed.commands.get("PRE") as f64 / closed.commands.get("RD").max(1) as f64;
        assert!(
            pre_rate_closed > pre_rate_open,
            "closed page should precharge more ({pre_rate_closed} vs {pre_rate_open})"
        );
    }

    #[test]
    fn trace_depth_records_every_command() {
        let mut cfg = SystemConfig::tiny();
        cfg.target_requests = 200;
        cfg.trace_depth = 1 << 20; // deep enough to retain the whole run
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 11), Box::new(NoMitigation::new()));
        let r = sys.run();
        let total_cmds: u64 = ["ACT", "PRE", "RD", "WR", "REF", "RFM", "RFMAB", "RFMSB"]
            .iter()
            .map(|m| r.commands.get(m))
            .sum();
        let trace = sys.device().trace().expect("tracing enabled");
        assert!(trace.is_complete(), "depth 2^20 should retain all commands");
        assert_eq!(trace.len() as u64, total_cmds);
        let recs = sys.take_trace().expect("tracing enabled");
        // Monotone non-decreasing cycles, commands well-formed.
        assert!(recs.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(sys.take_trace().expect("still enabled").is_empty());
    }

    #[test]
    fn refresh_claims_the_command_bus() {
        // Two ranks share each channel on the DDR4 config: a REF on rank 0
        // must exclude any same-cycle command on the channel. Build a trace
        // and check no two commands of one channel share a cycle.
        let mut cfg = SystemConfig::ddr4_actual_system();
        cfg.target_requests = 2_000;
        cfg.trace_depth = 1 << 20;
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 12), Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(
            r.commands.get("REF") > 0,
            "need refreshes to exercise the path"
        );
        let geo = *sys.device().geometry();
        let recs = sys.take_trace().expect("tracing enabled");
        let mut last_by_ch = vec![None::<Cycle>; geo.channels as usize];
        for rec in recs {
            let ch = match rec.cmd {
                DramCommand::Ref { rank } => {
                    geo.channel_of(BankId(rank * geo.banks_per_rank())) as usize
                }
                cmd => geo.channel_of(cmd.bank().expect("non-REF has a bank")) as usize,
            };
            if let Some(prev) = last_by_ch[ch] {
                assert!(
                    rec.cycle > prev,
                    "two commands on channel {ch} at cycle {}",
                    rec.cycle
                );
            }
            last_by_ch[ch] = Some(rec.cycle);
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let cfg = SystemConfig::tiny();
        let a = MemSystem::new(cfg, one_stream(&cfg, 9), Box::new(NoMitigation::new())).run();
        let b = MemSystem::new(cfg, one_stream(&cfg, 9), Box::new(NoMitigation::new())).run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.completed, b.completed);
    }

    /// A 2-channel shrink of the tiny config (tiny itself is 1-channel, so
    /// it can't exercise sharding).
    fn two_channel_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::tiny();
        cfg.geometry.channels = 2;
        cfg.target_requests = 1_500;
        cfg
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        let serial_cfg = two_channel_cfg();
        let mut sharded_cfg = serial_cfg;
        sharded_cfg.shard_channels = true;
        sharded_cfg.shard_threads = 2;
        for seed in [13, 14] {
            let serial = MemSystem::new(
                serial_cfg,
                one_stream(&serial_cfg, seed),
                Box::new(NoMitigation::new()),
            )
            .run();
            let mut sys = MemSystem::new(
                sharded_cfg,
                one_stream(&sharded_cfg, seed),
                Box::new(NoMitigation::new()),
            );
            assert!(sys.sharding_active(), "2-channel config must shard");
            let sharded = sys.run();
            assert_eq!(serial, sharded, "sharded run diverged (seed {seed})");
        }
    }

    #[test]
    fn sharded_traces_match_serial() {
        let mut serial_cfg = two_channel_cfg();
        serial_cfg.trace_depth = 1 << 20;
        let mut sharded_cfg = serial_cfg;
        sharded_cfg.shard_channels = true;
        sharded_cfg.shard_threads = 2;
        let mut a = MemSystem::new(
            serial_cfg,
            one_stream(&serial_cfg, 15),
            Box::new(NoMitigation::new()),
        );
        let mut b = MemSystem::new(
            sharded_cfg,
            one_stream(&sharded_cfg, 15),
            Box::new(NoMitigation::new()),
        );
        let ra = a.run();
        let rb = b.run();
        assert_eq!(ra, rb);
        assert_eq!(
            a.take_trace().expect("traced"),
            b.take_trace().expect("traced"),
            "command traces must be byte-identical"
        );
    }

    #[test]
    fn sharded_matches_serial_with_shadow() {
        // The hardest scheme: per-bank RRS trackers, RNG substreams, RFM.
        let serial_cfg = two_channel_cfg();
        let mut sharded_cfg = serial_cfg;
        sharded_cfg.shard_channels = true;
        sharded_cfg.shard_threads = 2;
        let serial = MemSystem::new(
            serial_cfg,
            one_stream(&serial_cfg, 16),
            Box::new(shadow_for(&serial_cfg)),
        )
        .run();
        let mut sys = MemSystem::new(
            sharded_cfg,
            one_stream(&sharded_cfg, 16),
            Box::new(shadow_for(&sharded_cfg)),
        );
        assert!(sys.sharding_active(), "SHADOW must split per-channel");
        let sharded = sys.run();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn single_channel_takes_the_serial_path() {
        let mut cfg = SystemConfig::tiny();
        cfg.shard_channels = true;
        cfg.shard_threads = 4;
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 17), Box::new(NoMitigation::new()));
        assert!(
            !sys.sharding_active(),
            "one channel has nothing to shard — serial fallback"
        );
        let r = sys.run();
        assert!(r.total_completed() >= cfg.target_requests);
    }

    #[test]
    fn force_full_scan_defeats_sharding() {
        let mut cfg = two_channel_cfg();
        cfg.shard_channels = true;
        cfg.force_full_scan = true;
        let sys = MemSystem::new(cfg, one_stream(&cfg, 18), Box::new(NoMitigation::new()));
        assert!(
            !sys.sharding_active(),
            "the reference engine must stay serial"
        );
    }

    #[test]
    fn engines_agree_bit_for_bit() {
        // Calendar (default), frontier walk, and the full-scan reference
        // must produce identical reports — the whole point of the
        // lazy-invalidation contract.
        let calendar_cfg = SystemConfig::tiny();
        let mut walk_cfg = calendar_cfg;
        walk_cfg.force_frontier_walk = true;
        let mut scan_cfg = calendar_cfg;
        scan_cfg.force_full_scan = true;
        for seed in [22, 23] {
            let cal = MemSystem::new(
                calendar_cfg,
                one_stream(&calendar_cfg, seed),
                Box::new(shadow_for(&calendar_cfg)),
            )
            .run();
            let walk = MemSystem::new(
                walk_cfg,
                one_stream(&walk_cfg, seed),
                Box::new(shadow_for(&walk_cfg)),
            )
            .run();
            let scan = MemSystem::new(
                scan_cfg,
                one_stream(&scan_cfg, seed),
                Box::new(shadow_for(&scan_cfg)),
            )
            .run();
            assert_eq!(cal, walk, "calendar vs frontier walk (seed {seed})");
            assert_eq!(cal, scan, "calendar vs full scan (seed {seed})");
        }
    }

    #[test]
    fn frontier_walk_still_shards() {
        // The walk engine was the shipping engine under sharding before
        // the calendar landed; forcing it must not defeat sharding.
        let serial_cfg = {
            let mut c = two_channel_cfg();
            c.force_frontier_walk = true;
            c
        };
        let mut sharded_cfg = serial_cfg;
        sharded_cfg.shard_channels = true;
        sharded_cfg.shard_threads = 2;
        let serial = MemSystem::new(
            serial_cfg,
            one_stream(&serial_cfg, 24),
            Box::new(NoMitigation::new()),
        )
        .run();
        let mut sys = MemSystem::new(
            sharded_cfg,
            one_stream(&sharded_cfg, 24),
            Box::new(NoMitigation::new()),
        );
        assert!(sys.sharding_active(), "frontier walk must still shard");
        assert_eq!(serial, sys.run());
    }

    #[test]
    fn report_counts_scheduling_passes() {
        let cfg = SystemConfig::tiny();
        let r = MemSystem::new(cfg, one_stream(&cfg, 25), Box::new(NoMitigation::new())).run();
        assert!(r.sched_passes > 0);
        assert!(r.pass_cycles > 0);
        assert!(r.pass_cycles <= r.sched_passes);
        assert!(
            r.pass_cycles < r.cycles,
            "the jump engine must skip cycles ({} passes over {} cycles)",
            r.pass_cycles,
            r.cycles
        );
    }

    #[test]
    fn report_exposes_per_channel_busy_cycles() {
        let cfg = two_channel_cfg();
        let r = MemSystem::new(cfg, one_stream(&cfg, 19), Box::new(NoMitigation::new())).run();
        assert_eq!(r.channel_busy_cycles.len(), 2);
        let total: u64 = r.channel_busy_cycles.iter().sum();
        let cmds: u64 = ["ACT", "PRE", "RD", "WR", "REF", "RFM", "RFMAB", "RFMSB"]
            .iter()
            .map(|m| r.commands.get(m))
            .sum();
        assert_eq!(total, cmds, "busy cycles are exactly the command count");
        assert!(r.channel_busy_shares().iter().all(|&s| s <= 1.0));
    }

    #[test]
    fn try_new_rejects_empty_streams() {
        let cfg = SystemConfig::tiny();
        let err = MemSystem::try_new(cfg, Vec::new(), Box::new(NoMitigation::new()))
            .expect_err("empty streams must be rejected");
        match err {
            SimError::InvalidConfig { what, ref why } => {
                assert_eq!(what, "streams");
                assert!(why.contains("at least one core"), "{why}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = SystemConfig::tiny();
        cfg.mlp = 0;
        let err = MemSystem::try_new(cfg, one_stream(&cfg, 1), Box::new(NoMitigation::new()))
            .expect_err("mlp = 0 must be rejected");
        assert!(matches!(err, SimError::InvalidConfig { what: "mlp", .. }));
    }

    #[test]
    fn try_new_rejects_missing_raaimt() {
        // A scheme that claims the RFM interface but supplies no RAAIMT
        // (every built-in scheme does; third-party ones may not).
        #[derive(Debug)]
        struct RfmNoRate;
        impl Mitigation for RfmNoRate {
            fn name(&self) -> &'static str {
                "RFM-NO-RATE"
            }
            fn uses_rfm(&self) -> bool {
                true
            }
        }
        let mut cfg = SystemConfig::tiny();
        cfg.raaimt_override = None;
        let err = MemSystem::try_new(cfg, one_stream(&cfg, 1), Box::new(RfmNoRate))
            .expect_err("an RFM scheme with no RAAIMT must be rejected");
        assert!(
            matches!(err, SimError::InvalidConfig { what: "raaimt", .. }),
            "{err}"
        );
    }

    #[test]
    fn watchdog_is_observation_only_on_healthy_runs() {
        // A healthy run with the watchdog armed must produce the exact
        // report of a watchdog-free run — the window only *observes*.
        let off = SystemConfig::tiny();
        let mut with = off;
        with.watchdog_window = with.max_cycles - 1;
        let r_off = MemSystem::new(off, one_stream(&off, 21), Box::new(NoMitigation::new())).run();
        let r_on = MemSystem::new(with, one_stream(&with, 21), Box::new(NoMitigation::new()))
            .run_checked()
            .expect("healthy run must not trip the watchdog");
        assert_eq!(r_off, r_on);
    }

    #[test]
    fn watchdog_window_must_fit_below_max_cycles() {
        let mut cfg = SystemConfig::tiny();
        cfg.watchdog_window = cfg.max_cycles;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                what: "watchdog_window",
                ..
            })
        ));
    }
}
