//! The memory-system engine: FR-FCFS scheduling, refresh, RFM, mitigation
//! hooks, and the fault model, advanced on one deterministic timeline.

use std::collections::VecDeque;

use shadow_dram::command::DramCommand;
use shadow_dram::device::{DramDevice, IssueResult};
use shadow_dram::geometry::{BankId, DramGeometry};
use shadow_dram::mapping::AddressMapper;
use shadow_dram::rfm::RaaCounters;
use shadow_mitigations::Mitigation;
use shadow_rh::HammerLedger;
use shadow_sim::events::EventQueue;
use shadow_sim::profiler::{Phase, PhaseProfile, PhaseTimer};
use shadow_sim::time::Cycle;
use shadow_workloads::RequestStream;

use crate::active::ActiveBanks;
use crate::config::{PagePolicy, SystemConfig};
use crate::cpu::CpuCore;
use crate::error::{BankStall, SimError, StallKind, StallSnapshot};
use crate::report::SimReport;

/// Sentinel core index for posted writes (no completion to deliver).
const POSTED: usize = usize::MAX;

/// A request waiting in a bank queue.
#[derive(Debug, Clone)]
struct QueuedReq {
    core: usize,
    pa_row: u32,
    write: bool,
    /// Cycle the request entered the controller (latency accounting).
    enqueued_at: Cycle,
    /// Earliest cycle the ACT may issue (throttling delay applied).
    ready_at: Cycle,
    /// Whether the mitigation has been consulted for this request's ACT.
    act_charged: bool,
    /// The translated DA row, valid while the bank sits at `cached_epoch`.
    cached_da: u32,
    /// The bank's remap epoch when `cached_da` was computed.
    cached_epoch: u64,
}

impl QueuedReq {
    /// The request's DA row, re-translating only if the bank's remap
    /// `epoch` has moved since the cached value was computed.
    ///
    /// `Mitigation::translate` is contractually a pure lookup, so the
    /// cached value is exact — this is what turns the FR-FCFS row-hit scan
    /// from a translation per request per pass into a field compare.
    fn da(&mut self, bank: usize, epoch: u64, mitigation: &mut dyn Mitigation) -> u32 {
        if self.cached_epoch != epoch {
            self.cached_da = mitigation.translate(bank, self.pa_row);
            self.cached_epoch = epoch;
        }
        self.cached_da
    }
}

/// A memoized per-bank frontier time, shared by `next_event_after` (skip
/// recomputing a still-valid bank contribution) and the scheduling pass
/// (skip the whole `schedule_bank` decision tree for a bank that provably
/// cannot accept a command at `now`).
///
/// `raw` is the bank's earliest-issue cycle computed *now-independently*
/// (the device's `earliest_*` queries clamp to `now` and are otherwise
/// pure functions of committed state, so they are evaluated at `now = 0`
/// and clamped by the caller — the final `max(now + 1)` absorbs any
/// sub-`now` value exactly as the unclamped scan did).
///
/// Validity is scoped to exactly the committed state the memoized value
/// read. Branch selection (RFM pending, open row, row hit, head
/// readiness) is a function of the bank's own command history and
/// scheduler bookkeeping alone, so every slot is pinned by `bank_cmd_seq`
/// (bumped per command to this bank — a rank's REF bumps every bank it
/// blocks) and `bank_seq` (command-free scheduler mutations: admissions,
/// mitigation consults). On top of that, `scope` records the widest
/// cross-bank coupling the device queries behind the branch actually
/// read, and `coupled_seq` pins that coupling:
///
///  - [`FrontierScope::Bank`] — a PRE frontier (`earliest_pre` reads only
///    the bank's own timers), nothing further to pin;
///  - [`FrontierScope::Rank`] — an ACT frontier adds the rank's
///    tRRD/tFAW/refresh-recovery window, mutated only by same-rank ACTs
///    (each bumps `MemSystem::rank_act_seq`);
///  - [`FrontierScope::Channel`] — a RD/WR frontier adds the channel CAS
///    coupling (tCCD spacing, data-bus occupancy, and the rank's tWTR,
///    all mutated only by RD/WR, each of which bumps
///    `MemSystem::ch_cas_seq`; a rank's banks share one channel, so the
///    channel counter covers tWTR too).
///
/// A PRE elsewhere on the channel, or a CAS to another rank's bank, no
/// longer invalidates an ACT frontier — that is the point: FR-FCFS read
/// storms leave closed banks' memos intact.
///
/// `consult_pending` records whether, at compute time, the bank had a
/// closed row and an un-`act_charged` head — the one `schedule_bank` path
/// with a side effect (the per-request mitigation consult) that fires even
/// when no command issues. The scheduling pass never skips such a bank,
/// so the consult happens at exactly the cycle it always did. The flag is
/// stable while the slot is valid: any open-row change, head removal, or
/// `needs_rfm` flip comes from a command to this bank (`bank_cmd_seq`),
/// and charging the head or admitting to an empty queue bumps `bank_seq`.
#[derive(Debug, Clone, Copy)]
struct FrontierSlot {
    bank_cmd_seq: u64,
    bank_seq: u64,
    /// The rank or channel counter captured at compute time (`scope`
    /// decides which; unused for bank-local frontiers).
    coupled_seq: u64,
    raw: Cycle,
    scope: FrontierScope,
    consult_pending: bool,
}

/// The widest cross-bank state a memoized frontier read; see
/// [`FrontierSlot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrontierScope {
    Bank,
    Rank,
    Channel,
}

impl FrontierSlot {
    const INVALID: FrontierSlot = FrontierSlot {
        bank_cmd_seq: u64::MAX,
        bank_seq: u64::MAX,
        coupled_seq: u64::MAX,
        raw: 0,
        scope: FrontierScope::Bank,
        consult_pending: true,
    };
}

/// The assembled memory system.
#[derive(Debug)]
pub struct MemSystem {
    cfg: SystemConfig,
    device: DramDevice,
    mapper: AddressMapper,
    mitigation: Box<dyn Mitigation>,
    raa: Option<RaaCounters>,
    ledgers: Vec<HammerLedger>,
    cores: Vec<CpuCore>,
    queues: Vec<VecDeque<QueuedReq>>,
    completions: EventQueue<usize>,
    latency: shadow_sim::stats::Histogram,
    /// Per-channel: cycle at which the command bus is next usable.
    ch_cmd_ready: Vec<Cycle>,
    /// Per-channel: mitigation-imposed blocking (RRS swaps).
    ch_block_until: Vec<Cycle>,
    blocked_cycles: Cycle,
    throttle_cycles: Cycle,
    /// Banks the scheduling pass must visit (queued work, pending RFM, or
    /// a row left open under the closed-page policy).
    active: ActiveBanks,
    /// Running total of delivered completions (the `done()` fast path —
    /// avoids summing every core each scheduling pass).
    completed_reqs: u64,
    /// Per-bank count of committed commands touching that bank's timers
    /// (its own ACT/PRE/RD/WR/RFM, plus its rank's REFs — frontier
    /// invalidation, bank scope).
    bank_cmd_seq: Vec<u64>,
    /// Per-rank ACT count (tRRD/tFAW coupling — frontier invalidation,
    /// rank scope).
    rank_act_seq: Vec<u64>,
    /// Per-channel CAS count (tCCD/bus/tWTR coupling — frontier
    /// invalidation, channel scope).
    ch_cas_seq: Vec<u64>,
    /// Per-bank count of command-free scheduler mutations: queue
    /// admissions and per-request mitigation consults (frontier
    /// invalidation).
    bank_seq: Vec<u64>,
    /// Memoized `next_event_after` contributions, one slot per bank.
    frontier: Vec<FrontierSlot>,
    /// Per-bank channel index (precomputed: `DramGeometry::channel_of`
    /// divides, and the scheduling gate runs per active bank per pass).
    bank_ch: Vec<u32>,
    /// Per-bank rank index (precomputed, same reason).
    bank_rank: Vec<u32>,
    /// Hot-path phase profile (`Some` only when requested and compiled in).
    profile: Option<PhaseProfile>,
    /// Cycle of the last delivered completion (watchdog bookkeeping;
    /// observation-only, never read by the scheduler).
    last_completion_at: Cycle,
    /// Cycle of the last committed DRAM command (watchdog bookkeeping).
    last_command_at: Cycle,
    now: Cycle,
}

impl MemSystem {
    /// Assembles a system: one core per stream, the given mitigation.
    ///
    /// Panicking wrapper over [`try_new`](MemSystem::try_new), kept for
    /// test ergonomics and callers whose configs are static.
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] message on any invalid input (empty
    /// `streams`, a config [`SystemConfig::validate`] rejects, an
    /// RFM-based mitigation without a RAAIMT).
    pub fn new(
        cfg: SystemConfig,
        streams: Vec<Box<dyn RequestStream>>,
        mitigation: Box<dyn Mitigation>,
    ) -> Self {
        Self::try_new(cfg, streams, mitigation).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assembles a system: one core per stream, the given mitigation.
    ///
    /// The mitigation's tRCD extension, refresh-rate multiplier and extra
    /// DA rows are applied here.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when `streams` is empty, when
    /// [`SystemConfig::validate`] rejects `cfg`, or when an RFM-based
    /// mitigation provides no RAAIMT and the config does not override one.
    pub fn try_new(
        cfg: SystemConfig,
        streams: Vec<Box<dyn RequestStream>>,
        mitigation: Box<dyn Mitigation>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if streams.is_empty() {
            return Err(SimError::invalid(
                "streams",
                "need at least one core (pass one RequestStream per simulated core)",
            ));
        }
        let mut timing = cfg.timing;
        timing.t_rcd_extra += mitigation.t_rcd_extra_cycles();
        let mult = mitigation.refresh_rate_multiplier().max(1) as u64;
        timing.t_refi = (timing.t_refi / mult).max(timing.t_rfc + 1);

        // Physical geometry: the mitigation may add rows per subarray.
        let phys_geo = DramGeometry {
            rows_per_subarray: mitigation.da_rows_per_subarray(cfg.geometry.rows_per_subarray),
            ..cfg.geometry
        };
        let mut device = DramDevice::new(phys_geo, timing);
        if cfg.trace_depth > 0 {
            device.enable_trace(cfg.trace_depth);
        }
        let banks = phys_geo.total_banks() as usize;
        let raa = if mitigation.uses_rfm() {
            let raaimt = cfg.raaimt_override.or(mitigation.raaimt()).ok_or_else(|| {
                SimError::invalid(
                    "raaimt",
                    format!(
                        "mitigation {} uses RFM but provides no RAAIMT; \
                         set SystemConfig::raaimt_override",
                        mitigation.name()
                    ),
                )
            })?;
            Some(RaaCounters::new(banks, raaimt))
        } else {
            None
        };
        let ledgers = (0..banks)
            .map(|_| {
                if cfg.force_eager_ledger {
                    HammerLedger::new_eager(
                        phys_geo.rows_per_bank(),
                        phys_geo.rows_per_subarray,
                        cfg.rh,
                    )
                } else {
                    HammerLedger::new(phys_geo.rows_per_bank(), phys_geo.rows_per_subarray, cfg.rh)
                }
            })
            .collect();
        let profile = if cfg.profile && shadow_sim::profiler::profiler_compiled() {
            Some(PhaseProfile::new())
        } else {
            None
        };
        Ok(MemSystem {
            mapper: AddressMapper::new(cfg.geometry),
            cores: streams
                .into_iter()
                .map(|s| CpuCore::new(s, cfg.mlp))
                .collect(),
            queues: (0..banks).map(|_| VecDeque::new()).collect(),
            completions: EventQueue::new(),
            // 16-cycle buckets out to 4096 cycles covers every DDR4/DDR5
            // latency of interest; beyond that the overflow bucket absorbs.
            latency: shadow_sim::stats::Histogram::new(16, 256),
            ch_cmd_ready: vec![0; cfg.geometry.channels as usize],
            ch_block_until: vec![0; cfg.geometry.channels as usize],
            blocked_cycles: 0,
            throttle_cycles: 0,
            active: ActiveBanks::new(banks),
            completed_reqs: 0,
            bank_cmd_seq: vec![0; banks],
            rank_act_seq: vec![0; phys_geo.total_ranks() as usize],
            ch_cas_seq: vec![0; cfg.geometry.channels as usize],
            bank_ch: (0..banks as u32)
                .map(|b| phys_geo.channel_of(BankId(b)))
                .collect(),
            bank_rank: (0..banks as u32)
                .map(|b| phys_geo.rank_of(BankId(b)))
                .collect(),
            bank_seq: vec![0; banks],
            frontier: vec![FrontierSlot::INVALID; banks],
            profile,
            last_completion_at: 0,
            last_command_at: 0,
            now: 0,
            cfg,
            device,
            mitigation,
            raa,
            ledgers,
        })
    }

    /// The device (for inspection in tests).
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Drains the collected command trace (oldest first), leaving tracing
    /// enabled. `None` unless the config set a non-zero `trace_depth`.
    pub fn take_trace(&mut self) -> Option<Vec<shadow_dram::trace::CommandRecord>> {
        self.device.take_trace()
    }

    /// The mitigation (for inspection in tests).
    pub fn mitigation(&self) -> &dyn Mitigation {
        self.mitigation.as_ref()
    }

    /// Bit-flip ledger of `bank`.
    pub fn ledger(&self, bank: usize) -> &HammerLedger {
        &self.ledgers[bank]
    }

    fn done(&self) -> bool {
        if self.now >= self.cfg.max_cycles {
            return true;
        }
        self.cfg.target_requests > 0 && self.completed_reqs >= self.cfg.target_requests
    }

    /// Commits one command: issues it on the device, claims the channel's
    /// command bus for this cycle, and invalidates exactly the memoized
    /// frontier scopes whose state the command mutated (see
    /// [`FrontierSlot`]). Every command the controller emits goes through
    /// here, which is what makes the invalidation exhaustive on the
    /// command side:
    ///
    ///  - every command advances its own bank's timers → `bank_cmd_seq`
    ///    (REF blocks and rewinds every bank of its rank, so it bumps each
    ///    of them — that also covers the rank-level refresh-recovery
    ///    window `earliest_act` reads, since only same-rank banks read it);
    ///  - ACT additionally opens a rank tRRD/tFAW window → `rank_act_seq`;
    ///  - RD/WR additionally move the channel's tCCD/bus/tWTR state →
    ///    `ch_cas_seq`.
    #[inline]
    fn issue_on(&mut self, ch: usize, cmd: DramCommand, now: Cycle) -> IssueResult {
        let t = PhaseTimer::start(self.profile.is_some());
        let res = self.device.issue(cmd, now);
        t.stop(&mut self.profile, Phase::Device);
        self.ch_cmd_ready[ch] = now + 1;
        self.last_command_at = now;
        let geo = self.device.geometry();
        match cmd {
            DramCommand::Act { bank, .. } => {
                let rank = self.bank_rank[bank.0 as usize] as usize;
                self.bank_cmd_seq[bank.0 as usize] =
                    self.bank_cmd_seq[bank.0 as usize].wrapping_add(1);
                self.rank_act_seq[rank] = self.rank_act_seq[rank].wrapping_add(1);
            }
            DramCommand::Pre { bank } | DramCommand::Rfm { bank } => {
                self.bank_cmd_seq[bank.0 as usize] =
                    self.bank_cmd_seq[bank.0 as usize].wrapping_add(1);
            }
            DramCommand::Rd { bank } | DramCommand::Wr { bank } => {
                self.bank_cmd_seq[bank.0 as usize] =
                    self.bank_cmd_seq[bank.0 as usize].wrapping_add(1);
                self.ch_cas_seq[ch] = self.ch_cas_seq[ch].wrapping_add(1);
            }
            DramCommand::Ref { rank } => {
                let bpr = geo.banks_per_rank();
                for b in 0..bpr {
                    let qi = (rank * bpr + b) as usize;
                    self.bank_cmd_seq[qi] = self.bank_cmd_seq[qi].wrapping_add(1);
                }
            }
        }
        res
    }

    /// Marks a command-free mutation of `bank`'s scheduler state
    /// (admission, mitigation consult), invalidating its frontier memo.
    #[inline]
    fn touch_bank(&mut self, bank: usize) {
        self.bank_seq[bank] = self.bank_seq[bank].wrapping_add(1);
    }

    /// Whether `qi`'s memoized frontier still reflects current state: the
    /// bank-scoped counters must match, plus whichever coupled counter the
    /// slot's scope pinned (see [`FrontierSlot`]).
    #[inline]
    fn slot_valid(&self, qi: usize) -> bool {
        let slot = &self.frontier[qi];
        if slot.bank_cmd_seq != self.bank_cmd_seq[qi] || slot.bank_seq != self.bank_seq[qi] {
            return false;
        }
        match slot.scope {
            FrontierScope::Bank => true,
            FrontierScope::Rank => {
                slot.coupled_seq == self.rank_act_seq[self.bank_rank[qi] as usize]
            }
            FrontierScope::Channel => {
                slot.coupled_seq == self.ch_cas_seq[self.bank_ch[qi] as usize]
            }
        }
    }

    /// The current value of the coupled invalidation counter `scope` pins.
    #[inline]
    fn coupled_seq(&self, scope: FrontierScope, qi: usize) -> u64 {
        match scope {
            FrontierScope::Bank => 0,
            FrontierScope::Rank => self.rank_act_seq[self.bank_rank[qi] as usize],
            FrontierScope::Channel => self.ch_cas_seq[self.bank_ch[qi] as usize],
        }
    }

    /// Applies a mitigation's refreshes/copies to the fault ledger.
    ///
    /// A targeted refresh is physically an ACT-PRE of the victim row, so it
    /// restores the row *and deposits one unit of disturbance on its own
    /// neighbours* — the side channel the Half-Double attack (paper ref
    /// [47]) exploits against TRR-based schemes. Modelling it as an
    /// activation makes that behaviour emergent rather than special-cased.
    fn apply_mitigation_work(
        ledger: &mut HammerLedger,
        refreshes: &[u32],
        copies: &[(u32, u32)],
        now: Cycle,
    ) {
        for &r in refreshes {
            ledger.on_activate(r, now);
        }
        for &(src, dst) in copies {
            // RowClone-style copy: both rows are activated (restored, and
            // their neighbours disturbed once).
            ledger.on_activate(src, now);
            ledger.on_activate(dst, now);
        }
    }

    /// One scheduling pass at `self.now`. Returns true if any command,
    /// completion, or admission happened.
    fn step(&mut self) -> bool {
        let now = self.now;
        let mut progressed = false;

        // 1. Completions due.
        while let Some((_, core)) = self.completions.pop_due(now) {
            self.cores[core].complete();
            self.completed_reqs += 1;
            self.last_completion_at = now;
            progressed = true;
        }

        // 2. Admit eligible core requests into bank queues.
        for i in 0..self.cores.len() {
            while self.cores[i].can_issue(now) {
                let req = self.cores[i].issue(now);
                let d = self.mapper.decode(req.pa);
                // Posted writes retire at the controller without waiting
                // for DRAM; the completion is delivered through the event
                // queue (next scheduling pass) so admission stays bounded
                // by the MLP window within one pass.
                let core = if req.write && self.cfg.posted_writes {
                    self.completions.schedule(now, i);
                    POSTED
                } else {
                    i
                };
                let bankno = d.bank.0 as usize;
                let epoch = self.mitigation.remap_epoch(bankno);
                let da = self.mitigation.translate(bankno, d.row);
                self.queues[bankno].push_back(QueuedReq {
                    core,
                    pa_row: d.row,
                    write: req.write,
                    enqueued_at: now,
                    ready_at: now,
                    act_charged: false,
                    cached_da: da,
                    cached_epoch: epoch,
                });
                self.active.insert(bankno);
                self.touch_bank(bankno);
                progressed = true;
            }
        }

        // 3. Refresh engine: one REF attempt per due rank. JEDEC permits
        //    postponing up to 8 REFs, so refresh is opportunistic (fires
        //    when the rank happens to be idle) until the debt hits the
        //    limit, at which point the controller force-drains the rank.
        let ranks = self.device.geometry().total_ranks();
        for rank in 0..ranks {
            if !self.device.refresh_due(rank, now) {
                continue;
            }
            let urgent = self.device.refresh_urgent(rank, now);
            let bpr = self.device.geometry().banks_per_rank();
            let mut all_idle = true;
            for b in 0..bpr {
                let bank = BankId(rank * bpr + b);
                if self.device.open_row(bank).is_some() {
                    all_idle = false;
                    if !urgent {
                        continue; // postpone: let the open row keep serving
                    }
                    let ch = self.device.geometry().channel_of(bank) as usize;
                    let t = self.device.earliest_pre(bank, now);
                    if t <= now && self.ch_cmd_ready[ch] <= now && self.ch_block_until[ch] <= now {
                        self.issue_on(ch, DramCommand::Pre { bank }, now);
                        progressed = true;
                    }
                }
            }
            // REF rides the same per-channel command bus as everything
            // else: without the claim below, a rank sharing its channel
            // could see a REF and a demand command in the same cycle.
            let ch = self.device.geometry().channel_of(BankId(rank * bpr)) as usize;
            if all_idle
                && self.device.earliest_ref(rank, now) <= now
                && self.ch_cmd_ready[ch] <= now
                && self.ch_block_until[ch] <= now
            {
                // Record which rows this REF covers before issuing.
                let ptr = self.device.refresh_row_ptr(rank);
                let rows = self.device.rows_per_ref(rank);
                self.issue_on(ch, DramCommand::Ref { rank }, now);
                let t = PhaseTimer::start(self.profile.is_some());
                for b in 0..bpr {
                    let bank = BankId(rank * bpr + b);
                    self.ledgers[bank.0 as usize].restore_block(ptr, rows);
                }
                t.stop(&mut self.profile, Phase::Ledger);
                // Note: JEDEC allows REF to credit RAA counters, but the
                // paper's evaluation (Eq. 1) derives RFM demand directly as
                // ACT count / RAAIMT, so no REF credit is applied here.
                progressed = true;
            }
        }

        // 4. Per-channel command scheduling, visiting only banks with
        //    queued work, a pending RFM, or a row left open under the
        //    closed-page policy. Iterating a snapshot of each bitmask word
        //    keeps the walk stable while banks deactivate themselves, and
        //    preserves the ascending bank order scheduling outcomes depend
        //    on (banks on one channel share a command bus).
        let sched = PhaseTimer::start(self.profile.is_some());
        if self.cfg.force_full_scan {
            self.active.insert_all();
        }
        for w in 0..self.active.words() {
            let mut bits = self.active.word(w);
            while bits != 0 {
                let bankno = (w * 64 + bits.trailing_zeros() as usize) as u32;
                bits &= bits - 1;
                let bank = BankId(bankno);
                let qi = bankno as usize;
                // Frontier fast path: a bank whose channel bus is busy, or
                // whose memoized frontier lies beyond `now` with no
                // mitigation consult pending, provably makes no progress
                // and has no side effect in `schedule_bank` — skip the
                // whole decision tree (queue scans, device timing math).
                // Every skipped bank keeps a non-empty queue or a pending
                // RFM (see `FrontierSlot`), so the deactivation check
                // below is a no-op for it too. The reference engine
                // (`force_full_scan`) bypasses the gate entirely.
                if !self.cfg.force_full_scan {
                    let ch = self.bank_ch[qi] as usize;
                    if self.ch_cmd_ready[ch] > now || self.ch_block_until[ch] > now {
                        continue;
                    }
                    let slot = self.frontier[qi];
                    if !slot.consult_pending && slot.raw > now && self.slot_valid(qi) {
                        continue;
                    }
                }
                if self.schedule_bank(bankno, now) {
                    progressed = true;
                }
                if self.queues[qi].is_empty()
                    && !self.raa.as_ref().is_some_and(|r| r.needs_rfm(bank))
                    && (self.cfg.page_policy == PagePolicy::Open
                        || self.device.open_row(bank).is_none())
                {
                    self.active.remove(qi);
                }
            }
        }
        sched.stop(&mut self.profile, Phase::Schedule);

        progressed
    }

    /// Attempts one command for `bankno` (section 4 of the scheduling
    /// pass). Returns true if a command issued.
    fn schedule_bank(&mut self, bankno: u32, now: Cycle) -> bool {
        let bank = BankId(bankno);
        let qi = bankno as usize;
        let ch = self.bank_ch[qi] as usize;
        if self.ch_cmd_ready[ch] > now || self.ch_block_until[ch] > now {
            return false;
        }
        // An urgent refresh drain has absolute priority on its rank;
        // postponable refreshes yield to demand traffic.
        if self.device.refresh_urgent(self.bank_rank[qi], now) {
            return false;
        }

        // 4a. RFM has priority over new ACTs for this bank.
        if self.raa.as_ref().is_some_and(|raa| raa.needs_rfm(bank)) {
            if self.device.open_row(bank).is_some() {
                if self.device.earliest_pre(bank, now) <= now {
                    self.issue_on(ch, DramCommand::Pre { bank }, now);
                    return true;
                }
                return false;
            }
            if self.device.earliest_act(bank, now) <= now {
                self.issue_on(ch, DramCommand::Rfm { bank }, now);
                self.raa.as_mut().expect("raa exists").on_rfm(bank);
                let t = PhaseTimer::start(self.profile.is_some());
                let action = self.mitigation.on_rfm(qi);
                t.stop(&mut self.profile, Phase::Rng);
                let t = PhaseTimer::start(self.profile.is_some());
                Self::apply_mitigation_work(
                    &mut self.ledgers[qi],
                    &action.refreshes,
                    &action.copies,
                    now,
                );
                t.stop(&mut self.profile, Phase::Ledger);
                if action.channel_block_ns > 0.0 {
                    let cycles = self
                        .device
                        .timing()
                        .clock
                        .ns_to_cycles(action.channel_block_ns);
                    self.ch_block_until[ch] = self.ch_block_until[ch].max(now + cycles);
                    self.blocked_cycles += cycles;
                }
                return true;
            }
            return false;
        }

        if self.queues[qi].is_empty() {
            // Closed-page policy: precharge idle-open rows eagerly.
            if self.cfg.page_policy == PagePolicy::Closed
                && self.device.open_row(bank).is_some()
                && self.device.earliest_pre(bank, now) <= now
            {
                self.issue_on(ch, DramCommand::Pre { bank }, now);
                return true;
            }
            return false;
        }

        // 4b. Open row: serve a row hit (FR-FCFS) if present.
        if let Some(open_da) = self.device.open_row(bank) {
            let epoch = self.mitigation.remap_epoch(qi);
            let tr = PhaseTimer::start(self.profile.is_some());
            let hit_idx = {
                let q = &mut self.queues[qi];
                let mitigation = &mut self.mitigation;
                q.iter_mut()
                    .position(|r| r.da(qi, epoch, mitigation.as_mut()) == open_da)
            };
            tr.stop(&mut self.profile, Phase::Translate);
            if let Some(idx) = hit_idx {
                let write = self.queues[qi][idx].write;
                let t = if write {
                    self.device.earliest_wr(bank, now)
                } else {
                    self.device.earliest_rd(bank, now)
                };
                if t <= now {
                    let req = self.queues[qi].remove(idx).expect("index valid");
                    let cmd = if write {
                        DramCommand::Wr { bank }
                    } else {
                        DramCommand::Rd { bank }
                    };
                    let res = self.issue_on(ch, cmd, now);
                    let done = res.done_at.expect("CAS returns done");
                    self.latency.record(done - req.enqueued_at);
                    if req.core != POSTED {
                        self.completions.schedule(done, req.core);
                    }
                    return true;
                }
                return false;
            }
            // 4c. Conflict: close the row.
            if self.device.earliest_pre(bank, now) <= now {
                self.issue_on(ch, DramCommand::Pre { bank }, now);
                return true;
            }
            return false;
        }

        // 4d. Closed bank: activate for the head request, consulting the
        // mitigation once per request (throttle delay, inline TRR, swaps).
        if !self.queues[qi].front().expect("non-empty").act_charged {
            let pa_row = self.queues[qi].front().expect("head").pa_row;
            let t = PhaseTimer::start(self.profile.is_some());
            let resp = self.mitigation.on_activate(qi, pa_row, now);
            t.stop(&mut self.profile, Phase::Rng);
            {
                let head = self.queues[qi].front_mut().expect("head");
                head.act_charged = true;
                if resp.delay_cycles > 0 {
                    head.ready_at = now + resp.delay_cycles;
                }
            }
            // The consult can change head readiness (and mitigation state)
            // without committing a command.
            self.touch_bank(qi);
            self.throttle_cycles += resp.delay_cycles;
            let t = PhaseTimer::start(self.profile.is_some());
            Self::apply_mitigation_work(&mut self.ledgers[qi], &resp.refreshes, &resp.copies, now);
            t.stop(&mut self.profile, Phase::Ledger);
            if resp.channel_block_ns > 0.0 {
                let cycles = self
                    .device
                    .timing()
                    .clock
                    .ns_to_cycles(resp.channel_block_ns);
                self.ch_block_until[ch] = self.ch_block_until[ch].max(now + cycles);
                self.blocked_cycles += cycles;
            }
        }
        let head_ready = self.queues[qi].front().expect("head").ready_at;
        if head_ready > now || self.ch_block_until[ch] > now {
            return false;
        }
        if self.device.earliest_act(bank, now) <= now {
            let epoch = self.mitigation.remap_epoch(qi);
            let tr = PhaseTimer::start(self.profile.is_some());
            let (pa_row, da) = {
                let head = self.queues[qi].front_mut().expect("head");
                (head.pa_row, head.da(qi, epoch, self.mitigation.as_mut()))
            };
            tr.stop(&mut self.profile, Phase::Translate);
            self.issue_on(ch, DramCommand::Act { bank, row: da }, now);
            let t = PhaseTimer::start(self.profile.is_some());
            self.ledgers[qi].on_activate(da, now);
            t.stop(&mut self.profile, Phase::Ledger);
            if let Some(raa) = &mut self.raa {
                if self.mitigation.counts_toward_rfm(qi, pa_row) {
                    raa.on_act(bank);
                }
            }
            return true;
        }
        false
    }

    /// The `now`-independent part of a bank's earliest-event time: every
    /// `DramDevice::earliest_*` is `now.max(raw)` with `raw` a pure function
    /// of committed device state, so evaluating at `now = 0` yields `raw`
    /// itself. The caller re-applies the `now` bound; see [`FrontierSlot`]
    /// for why the difference never reaches the scheduler.
    ///
    /// Also returns the widest cross-bank coupling the value read — which
    /// `earliest_*` family the taken branch consulted — so the memo can be
    /// pinned at exactly that scope.
    fn bank_frontier_raw(
        &mut self,
        bank: BankId,
        qi: usize,
        needs_rfm: bool,
    ) -> (Cycle, FrontierScope) {
        if needs_rfm {
            if self.device.open_row(bank).is_some() {
                (self.device.earliest_pre(bank, 0), FrontierScope::Bank)
            } else {
                (self.device.earliest_act(bank, 0), FrontierScope::Rank)
            }
        } else if let Some(open_da) = self.device.open_row(bank) {
            let tr = PhaseTimer::start(self.profile.is_some());
            let has_hit = {
                let epoch = self.mitigation.remap_epoch(qi);
                let q = &mut self.queues[qi];
                let mitigation = &mut self.mitigation;
                q.iter_mut()
                    .any(|r| r.da(qi, epoch, mitigation.as_mut()) == open_da)
            };
            tr.stop(&mut self.profile, Phase::Translate);
            if has_hit {
                (
                    self.device
                        .earliest_rd(bank, 0)
                        .min(self.device.earliest_wr(bank, 0)),
                    FrontierScope::Channel,
                )
            } else {
                (self.device.earliest_pre(bank, 0), FrontierScope::Bank)
            }
        } else {
            let head_ready = self.queues[qi].front().map(|r| r.ready_at).unwrap_or(0);
            (
                self.device.earliest_act(bank, 0).max(head_ready),
                FrontierScope::Rank,
            )
        }
    }

    /// The earliest future cycle at which anything can happen.
    fn next_event_after(&mut self, now: Cycle) -> Cycle {
        let sched = PhaseTimer::start(self.profile.is_some());
        let mut next = Cycle::MAX;
        if let Some(t) = self.completions.next_at() {
            next = next.min(t);
        }
        for c in &self.cores {
            if let Some(t) = c.next_eligible() {
                next = next.min(t);
            }
        }
        // Only active banks can produce a bank event; the active set is a
        // superset of the banks the full scan would have accepted (it can
        // additionally hold Closed-policy banks with an open row and no
        // queue, which the guard below skips exactly as the full scan did).
        // The reference engine also bypasses the frontier memo so it keeps
        // exercising the original recompute-every-bank path.
        let use_memo = !self.cfg.force_full_scan;
        if self.cfg.force_full_scan {
            self.active.insert_all();
        }
        let geo = *self.device.geometry();
        for w in 0..self.active.words() {
            let mut bits = self.active.word(w);
            while bits != 0 {
                let bankno = (w * 64 + bits.trailing_zeros() as usize) as u32;
                bits &= bits - 1;
                let bank = BankId(bankno);
                let qi = bankno as usize;
                let ch = self.bank_ch[qi] as usize;
                let floor = self.ch_cmd_ready[ch].max(self.ch_block_until[ch]);
                let needs_rfm = self.raa.as_ref().is_some_and(|r| r.needs_rfm(bank));
                if self.queues[qi].is_empty() && !needs_rfm {
                    continue;
                }
                let raw = if use_memo {
                    if self.slot_valid(qi) {
                        self.frontier[qi].raw
                    } else {
                        let (raw, scope) = self.bank_frontier_raw(bank, qi, needs_rfm);
                        let consult_pending = !needs_rfm
                            && self.device.open_row(bank).is_none()
                            && self.queues[qi].front().is_some_and(|r| !r.act_charged);
                        self.frontier[qi] = FrontierSlot {
                            bank_cmd_seq: self.bank_cmd_seq[qi],
                            bank_seq: self.bank_seq[qi],
                            coupled_seq: self.coupled_seq(scope, qi),
                            raw,
                            scope,
                            consult_pending,
                        };
                        raw
                    }
                } else {
                    self.bank_frontier_raw(bank, qi, needs_rfm).0
                };
                next = next.min(raw.max(floor));
            }
        }
        // Refresh deadlines.
        for rank in 0..geo.total_ranks() {
            next = next.min(self.device_next_refresh(rank));
        }
        let out = next.max(now + 1);
        sched.stop(&mut self.profile, Phase::Schedule);
        out
    }

    fn device_next_refresh(&self, rank: u32) -> Cycle {
        // The device exposes refresh_due; approximate the next deadline by
        // probing (tREFI granularity keeps this cheap and exact enough).
        if self.device.refresh_due(rank, self.now) {
            self.now
        } else {
            let refi = self.device.timing().t_refi;
            ((self.now / refi) + 1) * refi
        }
    }

    /// How many consecutive same-cycle scheduling passes the watchdog
    /// tolerates before declaring a stuck-at-cycle loop. A legitimate
    /// repeat chain is bounded by the completions deliverable at one cycle
    /// (≤ cores × MLP per pass), so this is orders of magnitude above any
    /// real run.
    const STUCK_PASS_LIMIT: u64 = 1_000_000;

    /// Builds the watchdog's diagnostic snapshot of the controller state.
    fn stall_snapshot(&self, kind: StallKind) -> Box<StallSnapshot> {
        let mut banks: Vec<BankStall> = self
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(bank, q)| BankStall {
                bank,
                queue_depth: q.len(),
                open_row: self.device.open_row(BankId(bank as u32)),
                head_ready_at: q.front().map(|r| r.ready_at).unwrap_or(0),
                rfm_pending: self
                    .raa
                    .as_ref()
                    .is_some_and(|r| r.needs_rfm(BankId(bank as u32))),
            })
            .collect();
        banks.sort_by(|a, b| b.queue_depth.cmp(&a.queue_depth).then(a.bank.cmp(&b.bank)));
        let queued_requests = banks.iter().map(|b| b.queue_depth).sum();
        banks.truncate(StallSnapshot::MAX_BANKS);
        let trace_tail = self
            .device
            .trace()
            .map(|t| {
                let skip = t.len().saturating_sub(StallSnapshot::MAX_TRACE_TAIL);
                t.iter()
                    .skip(skip)
                    .map(|r| format!("@{} {:?}", r.cycle, r.cmd))
                    .collect()
            })
            .unwrap_or_default();
        Box::new(StallSnapshot {
            kind,
            cycle: self.now,
            window: self.cfg.watchdog_window,
            last_completion_at: self.last_completion_at,
            last_command_at: self.last_command_at,
            completed_requests: self.completed_reqs,
            queued_requests,
            channel_blocked_cycles: self.blocked_cycles,
            throttle_cycles: self.throttle_cycles,
            banks,
            trace_tail,
        })
    }

    /// Watchdog check, evaluated whenever `now` advances. Returns the
    /// stall diagnosis once no request has completed for a full window
    /// *while requests sit queued* (an idle system with empty queues is
    /// legitimately quiet, not stalled). Purely observational: it reads
    /// committed state only, so a run it never aborts is bit-identical to
    /// one with the watchdog disabled.
    fn watchdog_check(&mut self) -> Option<Box<StallSnapshot>> {
        let window = self.cfg.watchdog_window;
        if window == 0 || self.now.saturating_sub(self.last_completion_at) < window {
            return None;
        }
        if self.queues.iter().all(|q| q.is_empty()) {
            // Nothing in flight: push the watermark forward so a long idle
            // stretch can't masquerade as a stall once work resumes.
            self.last_completion_at = self.now;
            return None;
        }
        let kind = if self.now.saturating_sub(self.last_command_at) >= window {
            StallKind::Livelock
        } else {
            StallKind::Starvation
        };
        Some(self.stall_snapshot(kind))
    }

    /// Runs to the configured request target or cycle limit and reports.
    ///
    /// Panicking wrapper over [`run_checked`](MemSystem::run_checked):
    /// with the watchdog disabled (`watchdog_window == 0`, every preset's
    /// default) it cannot fail and behaves exactly as it always did.
    ///
    /// # Panics
    ///
    /// Panics with the stall diagnosis if the watchdog is enabled and
    /// fires; callers that enable it should prefer `run_checked`.
    pub fn run(&mut self) -> SimReport {
        self.run_checked().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs to the configured request target or cycle limit and reports,
    /// with the forward-progress watchdog armed when
    /// [`SystemConfig::watchdog_window`] is non-zero.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] with a [`StallSnapshot`] when the watchdog
    /// detects a livelock, completion starvation, or a stuck-at-cycle
    /// repeat loop. On the non-stalling path the report is bit-identical
    /// to a watchdog-free run (the determinism suite pins this).
    pub fn run_checked(&mut self) -> Result<SimReport, SimError> {
        let mut passes_at_now: u64 = 0;
        while !self.done() {
            let progressed = self.step();
            // A pass can enable further work at the same cycle only by
            // delivering a completion scheduled *at* `now` (posted writes;
            // CAS completions always land in the future): admissions are
            // exhausted within a pass unless a completion reopens an MLP
            // window, every committed command claims its channel's command
            // bus for the rest of this cycle, and no timing constraint
            // couples banks across channels — so a bank that could not
            // issue in this pass cannot issue later in the same cycle
            // either, and a 4d mitigation consult never waits for a later
            // pass (the gate's floor check blocks claimed channels in both
            // passes alike). The reference engine keeps the naive
            // repeat-while-progress loop, so the differential harness pins
            // this short-circuit cell for cell.
            let repeat = progressed
                && (self.cfg.force_full_scan || self.completions.next_at() == Some(self.now));
            // The `done()` guard matches the naive loop's exit shape: there,
            // the terminal pass progresses and the loop exits at the top
            // before any no-progress pass can advance `now` — so the
            // reported cycle count must not include a post-completion jump.
            if !repeat && !self.done() {
                self.now = self.next_event_after(self.now).min(self.cfg.max_cycles);
                passes_at_now = 0;
                if let Some(snap) = self.watchdog_check() {
                    return Err(SimError::Stalled(snap));
                }
            } else if repeat && self.cfg.watchdog_window > 0 {
                passes_at_now += 1;
                if passes_at_now >= Self::STUCK_PASS_LIMIT {
                    return Err(SimError::Stalled(
                        self.stall_snapshot(StallKind::StuckCycle),
                    ));
                }
            }
        }
        Ok(self.report())
    }

    /// Assembles the final [`SimReport`] from the accumulated state.
    fn report(&self) -> SimReport {
        SimReport {
            scheme: self.mitigation.name().to_string(),
            cycles: self.now,
            core_names: self.cores.iter().map(|c| c.name().to_string()).collect(),
            completed: self.cores.iter().map(|c| c.completed()).collect(),
            commands: self.device.stats().clone(),
            flips: self.ledgers.iter().map(|l| l.flips().to_vec()).collect(),
            channel_blocked_cycles: self.blocked_cycles,
            throttle_cycles: self.throttle_cycles,
            latency: self.latency.clone(),
            profile: self.profile.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::bank::ShadowConfig;
    use shadow_core::timing::ShadowTiming;
    use shadow_mitigations::{Drr, NoMitigation, Parfm, ShadowMitigation};
    use shadow_workloads::{AppProfile, ProfileStream, RandomStream};

    fn one_stream(cfg: &SystemConfig, seed: u64) -> Vec<Box<dyn RequestStream>> {
        vec![Box::new(RandomStream::new(
            cfg.capacity_bytes().max(1 << 20),
            seed,
        ))]
    }

    #[test]
    fn baseline_completes_requests() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 1), Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(r.total_completed() >= cfg.target_requests);
        assert!(r.commands.get("ACT") > 0);
        assert!(r.commands.get("RD") > 0);
        assert_eq!(r.commands.get("RFM"), 0, "no RFM without an RFM scheme");
    }

    #[test]
    fn refresh_happens() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 2), Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(
            r.commands.get("REF") > 0,
            "no refreshes in {} cycles",
            r.cycles
        );
    }

    #[test]
    fn drr_doubles_refresh_rate() {
        let cfg = SystemConfig::tiny();
        let base = MemSystem::new(cfg, one_stream(&cfg, 3), Box::new(NoMitigation::new())).run();
        let drr = MemSystem::new(cfg, one_stream(&cfg, 3), Box::new(Drr::new())).run();
        let per_cycle_base = base.commands.get("REF") as f64 / base.cycles as f64;
        let per_cycle_drr = drr.commands.get("REF") as f64 / drr.cycles as f64;
        let ratio = per_cycle_drr / per_cycle_base;
        assert!((1.7..2.4).contains(&ratio), "REF rate ratio {ratio}");
    }

    #[test]
    fn rfm_scheme_triggers_rfms() {
        let cfg = SystemConfig::tiny();
        let rh = cfg.rh;
        let parfm = Parfm::new(cfg.geometry.total_banks() as usize, rh, 16, 7)
            .with_rows_per_subarray(cfg.geometry.rows_per_subarray);
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 4), Box::new(parfm));
        let r = sys.run();
        assert!(r.commands.get("RFM") > 0, "RFM never issued");
        // RAAIMT=16: roughly one RFM per 16 ACTs.
        let apr = r.acts_per_rfm().unwrap();
        assert!((10.0..30.0).contains(&apr), "ACTs per RFM = {apr}");
    }

    fn shadow_with_raaimt(cfg: &SystemConfig, raaimt: u32) -> ShadowMitigation {
        let scfg = ShadowConfig {
            subarrays: cfg.geometry.subarrays_per_bank,
            rows_per_subarray: cfg.geometry.rows_per_subarray,
        };
        ShadowMitigation::new(
            cfg.geometry.total_banks() as usize,
            scfg,
            raaimt,
            &cfg.timing,
            &ShadowTiming::paper_default(),
            99,
        )
    }

    fn shadow_for(cfg: &SystemConfig) -> ShadowMitigation {
        shadow_with_raaimt(cfg, 16)
    }

    #[test]
    fn shadow_runs_and_shuffles() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 5), Box::new(shadow_for(&cfg)));
        let r = sys.run();
        assert!(r.commands.get("RFM") > 0);
        assert!(r.total_completed() >= cfg.target_requests);
    }

    #[test]
    fn shadow_slows_down_modestly() {
        // tRCD' and RFM work must cost something, but not catastrophically.
        let cfg = SystemConfig::tiny();
        let base = MemSystem::new(cfg, one_stream(&cfg, 6), Box::new(NoMitigation::new())).run();
        let sh = MemSystem::new(cfg, one_stream(&cfg, 6), Box::new(shadow_for(&cfg))).run();
        let rel = sh.relative_performance(&base);
        assert!(rel < 1.0, "SHADOW cannot be free (rel = {rel})");
        assert!(rel > 0.5, "SHADOW overhead implausibly high (rel = {rel})");
    }

    #[test]
    fn single_sided_hammer_flips_baseline_but_not_shadow() {
        // An attacker hammering one row must flip victims on the
        // unprotected system; SHADOW's shuffling + incremental refresh must
        // prevent it at the same ACT budget.
        #[derive(Debug)]
        struct Hammer {
            pas: [u64; 2],
            i: usize,
        }
        impl RequestStream for Hammer {
            fn next_request(&mut self) -> shadow_workloads::Request {
                self.i ^= 1;
                shadow_workloads::Request {
                    pa: self.pas[self.i],
                    write: false,
                    gap_cycles: 0,
                }
            }
            fn name(&self) -> &str {
                "hammer"
            }
        }
        let mut cfg = SystemConfig::tiny();
        cfg.target_requests = 0;
        cfg.max_cycles = 3_000_000;
        // Double-sided hammer around row 8 of bank 0 (16-row subarrays):
        // alternating rows 7 and 9 forces an ACT per access.
        let mapper = AddressMapper::new(cfg.geometry);
        let bank = cfg.geometry.bank_id(0, 0, 0);
        let pas = [mapper.pa_of_row(bank, 7), mapper.pa_of_row(bank, 9)];

        let mut base_sys = MemSystem::new(
            cfg,
            vec![Box::new(Hammer { pas, i: 0 })],
            Box::new(NoMitigation::new()),
        );
        let base = base_sys.run();
        assert!(base.total_flips() > 0, "baseline should flip (H_cnt=64)");

        // The tiny parameters (H_cnt = 64, N_row = 16) sit far off Table
        // II's secure diagonal at RAAIMT 16, so use the proportionally
        // secure RAAIMT = 4 (H_cnt / RAAIMT = 16 = N_row) and require a
        // dramatic reduction rather than perfection.
        let mut shadow_cfg = cfg;
        shadow_cfg.raaimt_override = Some(4);
        let mut sh_sys = MemSystem::new(
            shadow_cfg,
            vec![Box::new(Hammer { pas, i: 0 })],
            Box::new(shadow_with_raaimt(&shadow_cfg, 4)),
        );
        let sh = sh_sys.run();
        assert!(
            sh.total_flips() * 50 < base.total_flips(),
            "SHADOW must suppress the double-sided hammer ({} vs {} flips)",
            sh.total_flips(),
            base.total_flips()
        );
    }

    #[test]
    fn spec_mix_runs_on_ddr4() {
        let mut cfg = SystemConfig::ddr4_actual_system();
        cfg.target_requests = 5_000;
        let streams: Vec<Box<dyn RequestStream>> = vec![
            Box::new(ProfileStream::new(
                AppProfile::spec_high()[0],
                cfg.capacity_bytes(),
                1,
            )),
            Box::new(ProfileStream::new(
                AppProfile::spec_low()[0],
                cfg.capacity_bytes(),
                2,
            )),
        ];
        let mut sys = MemSystem::new(cfg, streams, Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(r.total_completed() >= 5_000);
        // The memory-bound core completes far more than the compute-bound.
        assert!(r.completed[0] > r.completed[1] * 5);
    }

    #[test]
    fn posted_writes_never_stall_cores() {
        // A write-heavy stream should finish sooner with posted writes.
        #[derive(Debug)]
        struct WriteHeavy {
            rng: shadow_sim::rng::Xoshiro256,
        }
        impl RequestStream for WriteHeavy {
            fn next_request(&mut self) -> shadow_workloads::Request {
                let pa = self.rng.gen_range(0, 1 << 14) * 64;
                shadow_workloads::Request {
                    pa,
                    write: true,
                    gap_cycles: 0,
                }
            }
            fn name(&self) -> &str {
                "write-heavy"
            }
        }
        let make = || -> Vec<Box<dyn RequestStream>> {
            vec![Box::new(WriteHeavy {
                rng: shadow_sim::rng::Xoshiro256::seed_from_u64(4),
            })]
        };
        let cfg = SystemConfig::tiny();
        let mut posted_cfg = cfg;
        posted_cfg.posted_writes = true;
        let plain = MemSystem::new(cfg, make(), Box::new(NoMitigation::new())).run();
        let posted = MemSystem::new(posted_cfg, make(), Box::new(NoMitigation::new())).run();
        assert!(
            posted.cycles <= plain.cycles,
            "posted writes slower ({} vs {})",
            posted.cycles,
            plain.cycles
        );
        assert!(posted.total_completed() >= cfg.target_requests);
    }

    #[test]
    fn latency_histogram_populated_and_plausible() {
        let cfg = SystemConfig::tiny();
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 21), Box::new(NoMitigation::new()));
        let r = sys.run();
        // CAS-issued requests whose data lands after the stop condition are
        // recorded but not completed, so the histogram may lead slightly.
        assert!(r.latency.count() >= r.total_completed());
        assert!(r.latency.count() <= r.total_completed() + (cfg.mlp as u64));
        let tp = cfg.timing;
        // Every request needs at least the CAS-to-data time.
        assert!(r.latency.mean() >= (tp.t_cl + tp.t_bl) as f64);
        assert!(r.latency.percentile(50.0) > 0);
    }

    #[test]
    fn closed_page_policy_precharges_more() {
        let cfg_open = SystemConfig::tiny();
        let mut cfg_closed = SystemConfig::tiny();
        cfg_closed.page_policy = crate::config::PagePolicy::Closed;
        let seq: Vec<Box<dyn RequestStream>> =
            vec![Box::new(shadow_workloads::ProfileStream::new(
                shadow_workloads::AppProfile::spec_low()[1], // imagick: high locality
                1 << 20,
                3,
            ))];
        let open = MemSystem::new(cfg_open, seq, Box::new(NoMitigation::new())).run();
        let seq2: Vec<Box<dyn RequestStream>> =
            vec![Box::new(shadow_workloads::ProfileStream::new(
                shadow_workloads::AppProfile::spec_low()[1],
                1 << 20,
                3,
            ))];
        let closed = MemSystem::new(cfg_closed, seq2, Box::new(NoMitigation::new())).run();
        let pre_rate_open = open.commands.get("PRE") as f64 / open.commands.get("RD").max(1) as f64;
        let pre_rate_closed =
            closed.commands.get("PRE") as f64 / closed.commands.get("RD").max(1) as f64;
        assert!(
            pre_rate_closed > pre_rate_open,
            "closed page should precharge more ({pre_rate_closed} vs {pre_rate_open})"
        );
    }

    #[test]
    fn trace_depth_records_every_command() {
        let mut cfg = SystemConfig::tiny();
        cfg.target_requests = 200;
        cfg.trace_depth = 1 << 20; // deep enough to retain the whole run
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 11), Box::new(NoMitigation::new()));
        let r = sys.run();
        let total_cmds: u64 = ["ACT", "PRE", "RD", "WR", "REF", "RFM"]
            .iter()
            .map(|m| r.commands.get(m))
            .sum();
        let trace = sys.device().trace().expect("tracing enabled");
        assert!(trace.is_complete(), "depth 2^20 should retain all commands");
        assert_eq!(trace.len() as u64, total_cmds);
        let recs = sys.take_trace().expect("tracing enabled");
        // Monotone non-decreasing cycles, commands well-formed.
        assert!(recs.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(sys.take_trace().expect("still enabled").is_empty());
    }

    #[test]
    fn refresh_claims_the_command_bus() {
        // Two ranks share each channel on the DDR4 config: a REF on rank 0
        // must exclude any same-cycle command on the channel. Build a trace
        // and check no two commands of one channel share a cycle.
        let mut cfg = SystemConfig::ddr4_actual_system();
        cfg.target_requests = 2_000;
        cfg.trace_depth = 1 << 20;
        let mut sys = MemSystem::new(cfg, one_stream(&cfg, 12), Box::new(NoMitigation::new()));
        let r = sys.run();
        assert!(
            r.commands.get("REF") > 0,
            "need refreshes to exercise the path"
        );
        let geo = *sys.device().geometry();
        let recs = sys.take_trace().expect("tracing enabled");
        let mut last_by_ch = vec![None::<Cycle>; geo.channels as usize];
        for rec in recs {
            let ch = match rec.cmd {
                DramCommand::Ref { rank } => {
                    geo.channel_of(BankId(rank * geo.banks_per_rank())) as usize
                }
                cmd => geo.channel_of(cmd.bank().expect("non-REF has a bank")) as usize,
            };
            if let Some(prev) = last_by_ch[ch] {
                assert!(
                    rec.cycle > prev,
                    "two commands on channel {ch} at cycle {}",
                    rec.cycle
                );
            }
            last_by_ch[ch] = Some(rec.cycle);
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let cfg = SystemConfig::tiny();
        let a = MemSystem::new(cfg, one_stream(&cfg, 9), Box::new(NoMitigation::new())).run();
        let b = MemSystem::new(cfg, one_stream(&cfg, 9), Box::new(NoMitigation::new())).run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn try_new_rejects_empty_streams() {
        let cfg = SystemConfig::tiny();
        let err = MemSystem::try_new(cfg, Vec::new(), Box::new(NoMitigation::new()))
            .expect_err("empty streams must be rejected");
        match err {
            SimError::InvalidConfig { what, ref why } => {
                assert_eq!(what, "streams");
                assert!(why.contains("at least one core"), "{why}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = SystemConfig::tiny();
        cfg.mlp = 0;
        let err = MemSystem::try_new(cfg, one_stream(&cfg, 1), Box::new(NoMitigation::new()))
            .expect_err("mlp = 0 must be rejected");
        assert!(matches!(err, SimError::InvalidConfig { what: "mlp", .. }));
    }

    #[test]
    fn try_new_rejects_missing_raaimt() {
        // A scheme that claims the RFM interface but supplies no RAAIMT
        // (every built-in scheme does; third-party ones may not).
        #[derive(Debug)]
        struct RfmNoRate;
        impl Mitigation for RfmNoRate {
            fn name(&self) -> &'static str {
                "RFM-NO-RATE"
            }
            fn uses_rfm(&self) -> bool {
                true
            }
        }
        let mut cfg = SystemConfig::tiny();
        cfg.raaimt_override = None;
        let err = MemSystem::try_new(cfg, one_stream(&cfg, 1), Box::new(RfmNoRate))
            .expect_err("an RFM scheme with no RAAIMT must be rejected");
        assert!(
            matches!(err, SimError::InvalidConfig { what: "raaimt", .. }),
            "{err}"
        );
    }

    #[test]
    fn watchdog_is_observation_only_on_healthy_runs() {
        // A healthy run with the watchdog armed must produce the exact
        // report of a watchdog-free run — the window only *observes*.
        let off = SystemConfig::tiny();
        let mut with = off;
        with.watchdog_window = with.max_cycles - 1;
        let r_off = MemSystem::new(off, one_stream(&off, 21), Box::new(NoMitigation::new())).run();
        let r_on = MemSystem::new(with, one_stream(&with, 21), Box::new(NoMitigation::new()))
            .run_checked()
            .expect("healthy run must not trip the watchdog");
        assert_eq!(r_off, r_on);
    }

    #[test]
    fn watchdog_window_must_fit_below_max_cycles() {
        let mut cfg = SystemConfig::tiny();
        cfg.watchdog_window = cfg.max_cycles;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                what: "watchdog_window",
                ..
            })
        ));
    }
}
