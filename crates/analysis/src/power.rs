//! DRAM + system power model (paper §VII-D, Fig. 12).
//!
//! Follows the Micron power-calculator methodology: each command class has
//! an energy cost derived from IDD currents, background power accrues with
//! time, and the system-level figure adds the CPU's TDP (the paper treats
//! the i9-7940X's 165 W TDP as the processor's power). Per-scheme extras
//! model what the mitigation adds:
//!
//! * SHADOW: one short-bitline remapping-row access per ACT (the isolation
//!   transistor makes this ~100× cheaper in bitline charge than a normal
//!   ACT — the paper finds total power dominated by these accesses), plus
//!   shuffle work (incremental refresh + two row copies + remapping-row
//!   write) per RFM.
//! * PARFM / Mithril: `2 × blast_radius` victim-row refreshes per RFM.
//! * DRR: the doubled REF count shows up directly in the command counts.

use shadow_memsys::SimReport;

/// Per-command and background energy parameters (one rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Energy of one ACT+PRE pair, in nJ (all chips of the rank).
    pub e_act_pre_nj: f64,
    /// Energy of one RD burst, in nJ.
    pub e_rd_nj: f64,
    /// Energy of one WR burst, in nJ.
    pub e_wr_nj: f64,
    /// Energy of one all-bank REF, in nJ.
    pub e_ref_nj: f64,
    /// Background (standby + peripheral) power per rank, in W.
    pub background_w: f64,
    /// Clock period in ns (to convert cycles to time).
    pub t_ck_ns: f64,
    /// CPU TDP added for system-level power, in W.
    pub cpu_tdp_w: f64,
}

impl PowerModel {
    /// DDR4-2666 constants (Micron 8 Gb ×8 DDR4 class, 8-chip rank).
    pub fn ddr4_2666() -> Self {
        PowerModel {
            e_act_pre_nj: 20.0,
            e_rd_nj: 14.0,
            e_wr_nj: 15.0,
            e_ref_nj: 1400.0,
            background_w: 1.2,
            t_ck_ns: 0.75,
            cpu_tdp_w: 165.0, // i9-7940X TDP (Table IV machine)
        }
    }

    /// DDR5-4800 constants (16 Gb class).
    pub fn ddr5_4800() -> Self {
        PowerModel {
            e_act_pre_nj: 17.0,
            e_rd_nj: 11.0,
            e_wr_nj: 12.0,
            e_ref_nj: 1800.0,
            background_w: 1.5,
            t_ck_ns: 0.417,
            cpu_tdp_w: 165.0,
        }
    }
}

/// Per-scheme energy extras.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchemeEnergy {
    /// Extra energy per ACT, in nJ (SHADOW's remapping-row access).
    pub per_act_nj: f64,
    /// Energy per RFM, in nJ (shuffles / TRR victims).
    pub per_rfm_nj: f64,
}

impl SchemeEnergy {
    /// No extras (baseline, DRR, BlockHammer).
    pub fn none() -> Self {
        Self::default()
    }

    /// SHADOW: remapping-row access ≈ 1% of an ACT+PRE (100× smaller
    /// bitline charge plus decoder overhead); per RFM: incremental refresh
    /// (1 ACT) + two row copies (2 ACTs each) + remapping-row write (~2
    /// short accesses).
    pub fn shadow(pm: &PowerModel) -> Self {
        let remap_access = pm.e_act_pre_nj * 0.012;
        SchemeEnergy {
            per_act_nj: remap_access,
            per_rfm_nj: 5.0 * pm.e_act_pre_nj + 2.0 * remap_access,
        }
    }

    /// TRR-based RFM schemes (PARFM, Mithril): `2 × blast_radius` victim
    /// refreshes, each an ACT+PRE.
    pub fn trr(pm: &PowerModel, blast_radius: u32) -> Self {
        SchemeEnergy {
            per_act_nj: 0.0,
            per_rfm_nj: 2.0 * blast_radius as f64 * pm.e_act_pre_nj,
        }
    }

    /// RRS: each swap streams two 8 KB rows through the MC — 2 × 128
    /// RD + WR bursts plus 4 ACT/PRE pairs. Reported per *swap*; callers
    /// convert using the swap count.
    pub fn rrs_swap_nj(pm: &PowerModel) -> f64 {
        2.0 * 128.0 * (pm.e_rd_nj + pm.e_wr_nj) + 4.0 * pm.e_act_pre_nj
    }
}

/// Power computed from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// DRAM power in W (per simulated memory system).
    pub dram_w: f64,
    /// DRAM + CPU TDP.
    pub system_w: f64,
    /// RFM commands per REF command (the secondary series of Fig. 12).
    pub rfm_per_ref: f64,
}

impl PowerReport {
    /// Computes power for a run under `pm` with `extra` scheme energies and
    /// `ranks` ranks of background power.
    pub fn from_report(pm: &PowerModel, extra: &SchemeEnergy, r: &SimReport, ranks: u32) -> Self {
        let time_s = r.cycles as f64 * pm.t_ck_ns * 1e-9;
        let acts = r.commands.get("ACT") as f64;
        let rds = r.commands.get("RD") as f64;
        let wrs = r.commands.get("WR") as f64;
        let refs = r.commands.get("REF") as f64;
        let rfms = r.commands.get("RFM") as f64;
        let dynamic_nj = acts * (pm.e_act_pre_nj + extra.per_act_nj)
            + rds * pm.e_rd_nj
            + wrs * pm.e_wr_nj
            + refs * pm.e_ref_nj
            + rfms * extra.per_rfm_nj;
        let dram_w = if time_s > 0.0 {
            dynamic_nj * 1e-9 / time_s + pm.background_w * ranks as f64
        } else {
            pm.background_w * ranks as f64
        };
        PowerReport {
            dram_w,
            system_w: dram_w + pm.cpu_tdp_w,
            rfm_per_ref: if refs > 0.0 { rfms / refs } else { 0.0 },
        }
    }

    /// System power relative to a baseline run.
    pub fn relative_to(&self, base: &PowerReport) -> f64 {
        self.system_w / base.system_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_sim::stats::Counter;

    fn report(act: u64, rd: u64, refs: u64, rfm: u64, cycles: u64) -> SimReport {
        let mut commands = Counter::new();
        commands.add("ACT", act);
        commands.add("PRE", act);
        commands.add("RD", rd);
        commands.add("REF", refs);
        commands.add("RFM", rfm);
        SimReport {
            scheme: "t".into(),
            cycles,
            core_names: vec![],
            completed: vec![],
            commands,
            flips: vec![],
            channel_blocked_cycles: 0,
            throttle_cycles: 0,
            latency: shadow_sim::stats::Histogram::new(16, 256),
            abo_events: 0,
            abo_recovery_cycles: 0,
            tracker_evictions: 0,
            channel_busy_cycles: vec![],
            sched_passes: 0,
            pass_cycles: 0,
            gate_rank_skips: vec![],
            gate_bus_skips: 0,
            profile: None,
        }
    }

    #[test]
    fn dram_power_in_plausible_range() {
        // ~1M ACTs + reads over 10M cycles (7.5 ms) on 8 ranks.
        let pm = PowerModel::ddr4_2666();
        let r = report(1_000_000, 1_500_000, 1000, 0, 10_000_000);
        let p = PowerReport::from_report(&pm, &SchemeEnergy::none(), &r, 8);
        assert!(
            p.dram_w > 5.0 && p.dram_w < 50.0,
            "DRAM power {} W",
            p.dram_w
        );
        assert!(p.system_w > pm.cpu_tdp_w);
    }

    #[test]
    fn shadow_power_overhead_is_sub_percent() {
        // The paper's claim: < 0.63% system power overhead even at 2K H_cnt.
        let pm = PowerModel::ddr4_2666();
        let base_run = report(1_000_000, 1_500_000, 1000, 0, 10_000_000);
        // SHADOW run: same work plus an RFM per 32 ACTs.
        let shadow_run = report(1_000_000, 1_500_000, 1000, 31_250, 10_000_000);
        let base = PowerReport::from_report(&pm, &SchemeEnergy::none(), &base_run, 8);
        let sh = PowerReport::from_report(&pm, &SchemeEnergy::shadow(&pm), &shadow_run, 8);
        let rel = sh.relative_to(&base);
        assert!(rel > 1.0, "SHADOW cannot cost nothing");
        assert!(rel < 1.01, "system overhead {rel} above the paper's band");
    }

    #[test]
    fn remap_access_dominates_shuffle_energy() {
        // Paper §VII-D: power is dominated by remapping-row accesses, not
        // the shuffles, because ACTs outnumber RFMs by RAAIMT.
        let pm = PowerModel::ddr4_2666();
        let e = SchemeEnergy::shadow(&pm);
        let acts_per_rfm = 64.0;
        let remap_total = e.per_act_nj * acts_per_rfm;
        let shuffle_total = e.per_rfm_nj;
        // Same order of magnitude, with neither below 10% of the other.
        let ratio = remap_total / shuffle_total;
        assert!(ratio > 0.05 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn trr_energy_scales_with_blast() {
        let pm = PowerModel::ddr4_2666();
        let b1 = SchemeEnergy::trr(&pm, 1).per_rfm_nj;
        let b3 = SchemeEnergy::trr(&pm, 3).per_rfm_nj;
        assert!((b3 / b1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rrs_swap_far_pricier_than_shadow_shuffle() {
        let pm = PowerModel::ddr4_2666();
        let swap = SchemeEnergy::rrs_swap_nj(&pm);
        let shuffle = SchemeEnergy::shadow(&pm).per_rfm_nj;
        assert!(swap > 10.0 * shuffle, "swap {swap} vs shuffle {shuffle}");
    }

    #[test]
    fn rfm_per_ref_ratio() {
        let pm = PowerModel::ddr4_2666();
        let r = report(100, 100, 50, 25, 1000);
        let p = PowerReport::from_report(&pm, &SchemeEnergy::none(), &r, 1);
        assert!((p.rfm_per_ref - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_degenerates_gracefully() {
        let pm = PowerModel::ddr4_2666();
        let r = report(0, 0, 0, 0, 0);
        let p = PowerReport::from_report(&pm, &SchemeEnergy::none(), &r, 2);
        assert_eq!(p.dram_w, 2.0 * pm.background_w);
    }
}
