//! Monte-Carlo cross-check of the Appendix XI analytics.
//!
//! Runs the *actual* SHADOW mechanism (the real [`RemapTable`] shuffle,
//! incremental refresh pointer, reservoir aggressor choice) in an abstract
//! timing frame — one step per RFM interval — against the paper's three
//! attack scenarios, and measures the empirical bit-flip probability. At
//! down-scaled parameters (small `N_row`, low `H_cnt`) the events are
//! frequent enough to measure with a few thousand trials, letting the
//! benchmark harness verify that the analytic model's *shape* (monotonicity
//! in RAAIMT, `H_cnt`, and `N_aggr`; Scenario III > II under the
//! incremental-refresh bound) emerges from the mechanism itself.

use shadow_core::remap::RemapTable;
use shadow_rh::RhParams;
use shadow_sim::rng::Xoshiro256;

/// The attack shape to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Scenario I: one aggressor, re-targeted to a fresh PA every interval.
    FreshRowPerInterval,
    /// Scenario II: `n_aggr` fixed aggressors inside one subarray.
    FixedSameSubarray,
    /// Scenario III: `n_aggr` fixed aggressors, one per subarray.
    FixedAcrossSubarrays,
}

/// Monte-Carlo parameters (down-scaled analogues of Table II's setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McParams {
    /// Rows per subarray.
    pub n_row: u32,
    /// Hammer threshold.
    pub h_cnt: u64,
    /// ACTs per RFM interval (RAAIMT).
    pub raaimt: u32,
    /// Blast radius.
    pub blast_radius: u32,
    /// Number of fixed aggressors (Scenarios II/III).
    pub n_aggr: u32,
    /// RFM intervals per trial (the refresh-window horizon).
    pub intervals: u32,
    /// Independent trials.
    pub trials: u32,
    /// RNG seed.
    pub seed: u64,
}

impl McParams {
    /// A measurable down-scaled default.
    pub fn scaled_default() -> Self {
        McParams {
            n_row: 64,
            h_cnt: 256,
            raaimt: 32,
            blast_radius: 2,
            n_aggr: 4,
            intervals: 256,
            trials: 400,
            seed: 7,
        }
    }
}

/// The Monte-Carlo engine.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    params: McParams,
}

impl MonteCarlo {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters.
    pub fn new(params: McParams) -> Self {
        assert!(
            params.n_row > 4 && params.raaimt > 0 && params.trials > 0,
            "degenerate params"
        );
        assert!(
            params.n_aggr >= 1 && params.n_aggr <= params.raaimt,
            "n_aggr out of range"
        );
        MonteCarlo { params }
    }

    /// Estimated probability that the attack causes any bit-flip within the
    /// horizon.
    pub fn run(&self, scenario: Scenario) -> f64 {
        let p = self.params;
        let mut rng = Xoshiro256::seed_from_u64(p.seed);
        let mut successes = 0u32;
        for _ in 0..p.trials {
            if self.one_trial(scenario, &mut rng, None) {
                successes += 1;
            }
        }
        successes as f64 / p.trials as f64
    }

    /// Estimated probability that the attack flips a *specific* victim PA
    /// row (§VII-A: "SHADOW prevents a bit-flip of a specific victim row
    /// more strongly" — the victim relocates with every shuffle that
    /// involves it, so aimed pressure disperses).
    pub fn run_targeted(&self, scenario: Scenario, victim_pa: u32) -> f64 {
        let p = self.params;
        assert!(victim_pa < p.n_row, "victim outside subarray 0");
        let mut rng = Xoshiro256::seed_from_u64(p.seed);
        let mut successes = 0u32;
        for _ in 0..p.trials {
            if self.one_trial(scenario, &mut rng, Some(victim_pa)) {
                successes += 1;
            }
        }
        successes as f64 / p.trials as f64
    }

    /// Runs one trial; true if a victim accumulated `h_cnt`. With
    /// `target = Some(pa)`, only a flip at that PA row's *current physical
    /// location* counts (the attacker's actual goal); with `None`, any
    /// flip anywhere counts (the conservative Table II metric).
    fn one_trial(&self, scenario: Scenario, rng: &mut Xoshiro256, target: Option<u32>) -> bool {
        let p = self.params;
        let rh = RhParams::new(p.h_cnt, p.blast_radius);
        let subarrays = match scenario {
            Scenario::FixedAcrossSubarrays => p.n_aggr,
            _ => 1,
        };
        let slots = p.n_row + 1;
        let mut tables: Vec<RemapTable> =
            (0..subarrays).map(|_| RemapTable::new(p.n_row)).collect();
        // Victim pressure per (subarray, DA slot).
        let mut pressure = vec![0.0f64; (subarrays * slots) as usize];
        // Aggressor PA rows: (subarray, pa index).
        let mut aggrs: Vec<(u32, u32)> = match scenario {
            Scenario::FreshRowPerInterval => vec![(0, rng.gen_range(0, p.n_row as u64) as u32)],
            Scenario::FixedSameSubarray => (0..p.n_aggr)
                .map(|i| (0, (i * (p.n_row / p.n_aggr.max(1))) % p.n_row))
                .collect(),
            Scenario::FixedAcrossSubarrays => (0..p.n_aggr).map(|i| (i, p.n_row / 2)).collect(),
        };
        let m = (p.raaimt / aggrs.len() as u32).max(1) as f64;

        for _ in 0..p.intervals {
            // 1. The interval's ACTs: deposit blast-weighted pressure around
            //    each aggressor's *current DA location*.
            for &(sa, pa) in &aggrs {
                let da = tables[sa as usize].da_of(pa);
                let base = (sa * slots) as usize;
                // The aggressor's own row is restored by its activations.
                pressure[base + da as usize] = 0.0;
                for d in 1..=p.blast_radius {
                    let w = rh.weight(d) * m;
                    if da >= d {
                        pressure[base + (da - d) as usize] += w;
                    }
                    if da + d < slots {
                        pressure[base + (da + d) as usize] += w;
                    }
                }
            }
            let flipped = match target {
                None => pressure.iter().any(|&v| v >= p.h_cnt as f64),
                Some(victim_pa) => {
                    // The victim lives in subarray 0; a targeted success is
                    // pressure crossing at its current DA slot.
                    let da = tables[0].da_of(victim_pa);
                    pressure[da as usize] >= p.h_cnt as f64
                }
            };
            if flipped {
                return true;
            }

            // 2. RFM: reservoir-sampled aggressor (uniform over the
            //    interval's ACTs = uniform over aggressors, equal shares).
            let pick = rng.gen_index(aggrs.len());
            let (sa, aggr_pa) = aggrs[pick];
            let table = &mut tables[sa as usize];
            let base = (sa * slots) as usize;

            // 2a. Incremental refresh at the DA pointer.
            let refreshed = table.advance_incr_ptr();
            pressure[base + refreshed as usize] = 0.0;

            // 2b. Shuffle: the two row copies restore all involved slots.
            let rand_pa = rng.gen_range(0, p.n_row as u64) as u32;
            let ops = table.shuffle(aggr_pa, rand_pa);
            for da in ops.activations() {
                pressure[base + da as usize] = 0.0;
            }

            // 3. Scenario I re-targets a fresh PA row next interval.
            if scenario == Scenario::FreshRowPerInterval {
                aggrs[0] = (0, rng.gen_range(0, p.n_row as u64) as u32);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insecure_config_flips_often() {
        // Tiny threshold, huge RAAIMT: one interval nearly flips by itself.
        let p = McParams {
            n_row: 32,
            h_cnt: 64,
            raaimt: 64,
            blast_radius: 2,
            n_aggr: 2,
            intervals: 128,
            trials: 200,
            seed: 1,
        };
        let prob = MonteCarlo::new(p).run(Scenario::FixedSameSubarray);
        assert!(prob > 0.5, "insecure config survived ({prob})");
    }

    #[test]
    fn secure_config_rarely_flips() {
        // H_cnt/RAAIMT = 64 (the Table II secure diagonal ratio).
        let p = McParams {
            n_row: 64,
            h_cnt: 512,
            raaimt: 8,
            blast_radius: 2,
            n_aggr: 2,
            intervals: 256,
            trials: 200,
            seed: 2,
        };
        let prob = MonteCarlo::new(p).run(Scenario::FixedSameSubarray);
        assert!(prob < 0.05, "secure config flipped too often ({prob})");
    }

    #[test]
    fn lower_raaimt_reduces_risk() {
        let mk = |raaimt| McParams {
            n_row: 64,
            h_cnt: 256,
            raaimt,
            blast_radius: 2,
            n_aggr: 4,
            intervals: 256,
            trials: 300,
            seed: 3,
        };
        let fast = MonteCarlo::new(mk(64)).run(Scenario::FixedSameSubarray);
        let slow = MonteCarlo::new(mk(8)).run(Scenario::FixedSameSubarray);
        assert!(
            slow <= fast,
            "more frequent shuffles must not increase risk ({slow} > {fast})"
        );
    }

    #[test]
    fn scenario_iii_at_least_as_strong_as_ii() {
        // Spreading across subarrays defeats the incremental-refresh bound.
        let p = McParams {
            trials: 300,
            ..McParams::scaled_default()
        };
        let p2 = MonteCarlo::new(p).run(Scenario::FixedSameSubarray);
        let p3 = MonteCarlo::new(p).run(Scenario::FixedAcrossSubarrays);
        assert!(p3 >= p2 * 0.5, "III ({p3}) should rival or beat II ({p2})");
    }

    #[test]
    fn scenario_i_weakest_at_scale() {
        let p = McParams::scaled_default();
        let p1 = MonteCarlo::new(p).run(Scenario::FreshRowPerInterval);
        assert!(p1 < 0.5, "birthday attack should rarely win here ({p1})");
    }

    #[test]
    fn targeted_is_much_harder_than_any() {
        // A breakable-for-"any" configuration should still rarely flip a
        // *chosen* victim: the shuffle moves both aggressors and victim.
        let p = McParams {
            trials: 300,
            seed: 9,
            ..McParams::scaled_default()
        };
        let mc = MonteCarlo::new(p);
        let any = mc.run(Scenario::FixedSameSubarray);
        let targeted = mc.run_targeted(Scenario::FixedSameSubarray, 17);
        assert!(any > 0.5, "config should be breakable for 'any' ({any})");
        assert!(
            targeted < any * 0.3,
            "targeted ({targeted}) should be far below any ({any})"
        );
    }

    #[test]
    #[should_panic]
    fn targeted_victim_must_be_in_subarray() {
        let p = McParams::scaled_default();
        let _ = MonteCarlo::new(p).run_targeted(Scenario::FixedSameSubarray, 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = McParams::scaled_default();
        let a = MonteCarlo::new(p).run(Scenario::FixedSameSubarray);
        let b = MonteCarlo::new(p).run(Scenario::FixedSameSubarray);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn degenerate_params_rejected() {
        let mut p = McParams::scaled_default();
        p.n_aggr = p.raaimt + 1;
        let _ = MonteCarlo::new(p);
    }
}
