//! Area accounting (paper §VII-D and the §III-B scalability argument).
//!
//! The paper synthesized the SHADOW controller in 40 nm CMOS, scaled to a
//! 22 nm DRAM process with the usual 10× density penalty (DRAM metal stacks
//! and drive currents are far worse than logic processes), and reported
//! 0.35 mm² per chip = 0.47% of a 16 Gb DDR5 die, plus 0.6% capacity for
//! the extra rows. We reproduce the accounting from component gate counts
//! and per-bit SRAM/CAM areas, and generate the tracker-growth comparison
//! that motivates the whole design: SHADOW's area is *independent of
//! `H_cnt`*, every tracker-based baseline grows as `H_cnt` shrinks.

use shadow_mitigations::{Mithril, MithrilClass, Rrs};
use shadow_rh::RhParams;
use shadow_trackers::TrackerCost;

/// Process and component parameters of the area model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// NAND2-equivalent gate area in the DRAM process, µm²
    /// (22 nm logic ≈ 0.16 µm² × 10 DRAM penalty).
    pub gate_um2: f64,
    /// SRAM bit area in the DRAM process, µm².
    pub sram_bit_um2: f64,
    /// CAM bit area in the DRAM process, µm².
    pub cam_bit_um2: f64,
    /// DDR5 chip area, mm² (16 Gb 1ynm class, ISSCC'19).
    pub chip_mm2: f64,
    /// Banks per chip.
    pub banks: u32,
    /// Subarrays per bank.
    pub subarrays_per_bank: u32,
}

impl AreaModel {
    /// The paper's 22 nm DRAM-process configuration.
    pub fn paper_default() -> Self {
        AreaModel {
            gate_um2: 1.6,
            sram_bit_um2: 0.30,
            cam_bit_um2: 0.60,
            chip_mm2: 74.0,
            banks: 32,
            subarrays_per_bank: 128,
        }
    }

    /// Gate count of one per-bank SHADOW controller (§VII-D): an ACT
    /// counter, six 9-bit row-address latches, a 7-bit subarray latch, a
    /// column-decoder MUX and control logic.
    pub fn controller_gates(&self) -> u64 {
        let counter = 150; // 16-bit counter + compare
        let latches = (6 * 9 + 7) * 8; // ~8 gates per latch bit
        let mux = 120;
        let control = 600;
        counter + latches as u64 + mux + control
    }

    /// Gate count of the per-subarray MUX + DEMUX pair.
    pub fn subarray_gates(&self) -> u64 {
        40
    }

    /// Gate count of the per-chip PRINCE RNG unit (unrolled, ~8 kGE in the
    /// literature).
    pub fn prince_gates(&self) -> u64 {
        8000
    }

    /// SHADOW logic area per chip, mm².
    pub fn shadow_logic_mm2(&self) -> f64 {
        let gates = self.banks as u64 * self.controller_gates()
            + self.banks as u64 * self.subarrays_per_bank as u64 * self.subarray_gates()
            + self.prince_gates();
        gates as f64 * self.gate_um2 * 1e-6
    }

    /// SHADOW logic as a fraction of the chip.
    pub fn shadow_logic_fraction(&self) -> f64 {
        self.shadow_logic_mm2() / self.chip_mm2
    }

    /// SHADOW capacity overhead: per 512-row subarray, one empty row plus
    /// two remapping-rows (one per open-bitline side, §V-A).
    pub fn shadow_capacity_fraction(&self) -> f64 {
        3.0 / 512.0
    }

    /// Area of a tracker table per chip, mm².
    pub fn tracker_mm2(&self, per_bank: &TrackerCost) -> f64 {
        let per_bank_um2 = per_bank.sram_bits as f64 * self.sram_bit_um2
            + per_bank.cam_bits as f64 * self.cam_bit_um2;
        per_bank_um2 * self.banks as f64 * 1e-6
    }
}

/// One row of the area comparison (per `H_cnt`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Hammer threshold this row is sized for.
    pub h_cnt: u64,
    /// SHADOW logic, mm² per chip (flat in `H_cnt`).
    pub shadow_mm2: f64,
    /// Mithril-area CAM, mm² per chip.
    pub mithril_area_mm2: f64,
    /// Mithril-perf CAM, mm² per chip.
    pub mithril_perf_mm2: f64,
    /// RRS MC-side SRAM, mm² equivalent per chip's share.
    pub rrs_mm2: f64,
}

impl AreaReport {
    /// Builds the comparison row for one `H_cnt`.
    pub fn for_h_cnt(model: &AreaModel, h_cnt: u64) -> Self {
        let rh = RhParams::new(h_cnt, 3);
        let mithril_area = Mithril::new(1, MithrilClass::Area, rh).table_cost();
        let mithril_perf = Mithril::new(1, MithrilClass::Perf, rh).table_cost();
        let rrs = Rrs::new(1, 65536, rh, 0).table_cost();
        AreaReport {
            h_cnt,
            shadow_mm2: model.shadow_logic_mm2(),
            mithril_area_mm2: model.tracker_mm2(&mithril_area),
            mithril_perf_mm2: model.tracker_mm2(&mithril_perf),
            rrs_mm2: model.tracker_mm2(&rrs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_logic_matches_paper_band() {
        let m = AreaModel::paper_default();
        let mm2 = m.shadow_logic_mm2();
        // Paper: 0.35 mm²; accept the 0.2–0.5 band for our gate estimates.
        assert!((0.2..0.5).contains(&mm2), "SHADOW logic {mm2} mm²");
        let frac = m.shadow_logic_fraction();
        assert!(
            (0.003..0.007).contains(&frac),
            "fraction {frac} (paper 0.47%)"
        );
    }

    #[test]
    fn capacity_overhead_is_paper_0_6_percent() {
        let f = AreaModel::paper_default().shadow_capacity_fraction();
        assert!((f - 0.00586).abs() < 0.0005, "capacity {f}");
    }

    #[test]
    fn shadow_flat_trackers_grow() {
        let m = AreaModel::paper_default();
        let r8k = AreaReport::for_h_cnt(&m, 8192);
        let r2k = AreaReport::for_h_cnt(&m, 2048);
        assert_eq!(
            r8k.shadow_mm2, r2k.shadow_mm2,
            "SHADOW must be flat in H_cnt"
        );
        assert!(
            r2k.mithril_area_mm2 > r8k.mithril_area_mm2,
            "Mithril-area must grow"
        );
        assert!(r2k.rrs_mm2 > r8k.rrs_mm2, "RRS must grow");
    }

    #[test]
    fn mithril_perf_bigger_than_area_variant() {
        let m = AreaModel::paper_default();
        let r = AreaReport::for_h_cnt(&m, 4096);
        assert!(r.mithril_perf_mm2 > r.mithril_area_mm2);
    }

    #[test]
    fn rrs_dwarfs_shadow_at_low_hcnt() {
        // §III-B: RRS needs tens of KB per bank; SHADOW a few latches.
        let m = AreaModel::paper_default();
        let r = AreaReport::for_h_cnt(&m, 2048);
        assert!(
            r.rrs_mm2 > 3.0 * r.shadow_mm2,
            "rrs {} shadow {}",
            r.rrs_mm2,
            r.shadow_mm2
        );
    }
}
