//! First-order RC timing model — the SPICE substitute for Table III.
//!
//! The paper derived its timing numbers from a 55 nm Rambus SPICE deck
//! scaled to 22 nm. The quantities it reports are all governed by simple
//! charge-sharing physics that a first-order model exposes directly:
//!
//! * **Sensing time** grows with the bitline-to-cell capacitance ratio: the
//!   sense amplifier must resolve a voltage swing of
//!   `ΔV = VDD/2 · C_cell/(C_cell + C_bl)`, so `t_sense ≈ k · (1 + C_bl/C_cell)`.
//!   The isolation transistor cuts `C_bl` ~100×, which is the entire
//!   mechanism behind the remapping-row's 2.3 ns sensing (vs 13.7 ns).
//! * **Write recovery** onto a short bitline is likewise faster (driving a
//!   much smaller RC load), giving tWR_RM = 9.0 ns vs 11.8 ns.
//! * **Wire delay** of the DA traversal to the paired subarray follows the
//!   distributed-RC formula `t ≈ 0.38·r·c·L²`.
//!
//! The model is calibrated once against the baseline tRCD (13.7 ns at a
//! conventional `C_bl/C_cell ≈ 6`) and then *predicts* the SHADOW-side
//! values; the Table III bench prints predicted vs paper.

/// The RC model and its calibration constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcTimingModel {
    /// Conventional bitline-to-cell capacitance ratio.
    pub cbl_over_ccell: f64,
    /// Capacitance reduction factor of the isolation transistor (~100×).
    pub isolation_factor: f64,
    /// Baseline sensing time (tRCD) in ns, used for calibration.
    pub t_rcd_base_ns: f64,
    /// Baseline write recovery in ns.
    pub t_wr_base_ns: f64,
    /// Row-decoder turn-on via the RRA signal, ns.
    pub t_decode_ns: f64,
    /// Wire resistance, Ω per mm (22 nm intermediate metal).
    pub wire_r_per_mm: f64,
    /// Wire capacitance, fF per mm.
    pub wire_c_ff_per_mm: f64,
    /// DA traversal distance: half-bank height + half-bank width, mm.
    pub traverse_mm: f64,
    /// SPICE-level tRAS of the source-row restore during a copy, ns (the
    /// paper's row-copy figure implies ~38.5 ns rather than the datasheet
    /// minimum of 32).
    pub copy_tras_ns: f64,
    /// Destination-drive fraction of tRAS (§VII-B SPICE result).
    pub copy_drive_factor: f64,
    /// Precharge time, ns.
    pub t_rp_ns: f64,
}

impl RcTimingModel {
    /// The paper-calibrated 22 nm configuration.
    pub fn paper_default() -> Self {
        RcTimingModel {
            cbl_over_ccell: 6.0,
            isolation_factor: 100.0,
            t_rcd_base_ns: 13.7,
            t_wr_base_ns: 11.8,
            t_decode_ns: 0.33,
            wire_r_per_mm: 800.0,
            wire_c_ff_per_mm: 200.0,
            traverse_mm: 4.0,
            copy_tras_ns: 38.5,
            copy_drive_factor: 0.55,
            t_rp_ns: 14.25,
        }
    }

    /// Sensing-time constant `k` from the baseline calibration:
    /// `t_rcd_base = k · (1 + C_bl/C_cell)`.
    fn k_sense(&self) -> f64 {
        self.t_rcd_base_ns / (1.0 + self.cbl_over_ccell)
    }

    /// Remapping-row sensing time (Table III tRCD_RM; paper: 2.3 ns).
    pub fn t_rcd_rm_ns(&self) -> f64 {
        self.k_sense() * (1.0 + self.cbl_over_ccell / self.isolation_factor)
    }

    /// Remapping-row write recovery (Table III tWR_RM; paper: 9.0 ns).
    ///
    /// Write recovery splits into cell-drive time (unchanged — the cell
    /// itself must charge) and bitline settling (scaled by the capacitance
    /// reduction); empirically ~75% cell-bound.
    pub fn t_wr_rm_ns(&self) -> f64 {
        let cell_bound = 0.75 * self.t_wr_base_ns;
        let bitline_bound = 0.25 * self.t_wr_base_ns;
        cell_bound
            + bitline_bound * (1.0 + self.cbl_over_ccell / self.isolation_factor)
                / (1.0 + self.cbl_over_ccell)
    }

    /// Distributed-RC wire delay of the DA traversal, ns.
    pub fn t_traverse_ns(&self) -> f64 {
        // t = 0.38 R C, with R and C the total line values.
        let r = self.wire_r_per_mm * self.traverse_mm;
        let c = self.wire_c_ff_per_mm * self.traverse_mm * 1e-15;
        0.38 * r * c * 1e9
    }

    /// Total tRD_RM: decode + sense + traverse (Table III; paper: 4.0 ns).
    pub fn t_rd_rm_ns(&self) -> f64 {
        self.t_decode_ns + self.t_rcd_rm_ns() + self.t_traverse_ns()
    }

    /// SHADOW's ACT time tRCD' (Table III; paper: 17.7 ns, +29%).
    pub fn t_rcd_prime_ns(&self) -> f64 {
        self.t_rcd_base_ns + self.t_rd_rm_ns()
    }

    /// One row-copy including precharge (Table III; paper: 73.9 ns).
    pub fn row_copy_ns(&self) -> f64 {
        self.copy_tras_ns * (1.0 + self.copy_drive_factor) + self.t_rp_ns
    }

    /// Predicted-vs-paper rows of Table III:
    /// `(name, ours_ns, paper_ns)`.
    pub fn table3(&self) -> Vec<(&'static str, f64, f64)> {
        vec![
            (
                "tRCD' (row activation in SHADOW)",
                self.t_rcd_prime_ns(),
                17.7,
            ),
            ("row copy w/ precharge", self.row_copy_ns(), 73.9),
            ("tRCD_RM (remapping-row sensing)", self.t_rcd_rm_ns(), 2.3),
            (
                "tWR_RM (remapping-row write recovery)",
                self.t_wr_rm_ns(),
                9.0,
            ),
            (
                "tRD_RM (remapping-row read latency)",
                self.t_rd_rm_ns(),
                4.0,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RcTimingModel {
        RcTimingModel::paper_default()
    }

    #[test]
    fn sensing_calibrated_to_baseline() {
        let m = model();
        let t = m.k_sense() * (1.0 + m.cbl_over_ccell);
        assert!((t - 13.7).abs() < 1e-9);
    }

    #[test]
    fn isolation_shrinks_sensing_near_paper() {
        let t = model().t_rcd_rm_ns();
        assert!((1.8..2.8).contains(&t), "tRCD_RM = {t} (paper 2.3)");
    }

    #[test]
    fn wire_delay_under_1ns() {
        let t = model().t_traverse_ns();
        assert!(t < 1.5, "traversal {t} ns (paper: <1 ns)");
        assert!(t > 0.1, "traversal implausibly free");
    }

    #[test]
    fn trd_rm_near_4ns() {
        let t = model().t_rd_rm_ns();
        assert!((3.0..5.0).contains(&t), "tRD_RM = {t} (paper 4.0)");
    }

    #[test]
    fn trcd_prime_within_paper_band() {
        let m = model();
        let t = m.t_rcd_prime_ns();
        assert!((16.5..19.0).contains(&t), "tRCD' = {t} (paper 17.7)");
        let ratio = t / m.t_rcd_base_ns;
        assert!((1.2..1.4).contains(&ratio), "+{ratio} (paper +29%)");
    }

    #[test]
    fn twr_rm_faster_than_baseline() {
        let m = model();
        let t = m.t_wr_rm_ns();
        assert!(t < m.t_wr_base_ns);
        assert!((8.0..10.5).contains(&t), "tWR_RM = {t} (paper 9.0)");
    }

    #[test]
    fn row_copy_matches_paper() {
        let t = model().row_copy_ns();
        assert!((70.0..78.0).contains(&t), "row copy = {t} (paper 73.9)");
    }

    #[test]
    fn every_table3_row_within_25_percent() {
        for (name, ours, paper) in model().table3() {
            let err = (ours - paper).abs() / paper;
            assert!(
                err < 0.25,
                "{name}: {ours:.2} vs paper {paper} ({:.0}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn weaker_isolation_slows_sensing() {
        let mut m = model();
        m.isolation_factor = 10.0;
        assert!(m.t_rcd_rm_ns() > model().t_rcd_rm_ns());
    }
}
