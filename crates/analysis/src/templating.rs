//! Memory-templating decay — §III-A's qualitative claim made quantitative.
//!
//! A Row Hammer exploit first *templates* memory: it reverse-engineers
//! which PA pairs are physically adjacent, then massages a victim page onto
//! a known-flippable row. Against a static mapping this knowledge is
//! permanent. Under SHADOW every RFM relocates rows, so templated knowledge
//! *decays*: the fraction of learned adjacencies that still hold shrinks
//! with every interval, and by the time a template is complete it is
//! already stale ("memory templating … cannot be undertaken successfully").
//!
//! [`TemplatingDecay`] drives a real [`ShadowBank`] with a uniform
//! activation load and measures, after each batch of RFMs:
//!
//! * **location survival** — fraction of rows still at the DA the attacker
//!   learned at time zero, and
//! * **adjacency survival** — fraction of PA pairs `(p, p+1)` that are
//!   still physically adjacent (|DA distance| = 1), the quantity
//!   double-sided attacks actually depend on.

use shadow_core::bank::{ShadowBank, ShadowConfig};
use shadow_crypto::PrinceRng;
use shadow_sim::rng::Xoshiro256;

/// One sample of the decay series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecaySample {
    /// RFMs executed so far.
    pub rfms: u32,
    /// Fraction of rows still at their time-zero DA.
    pub location_survival: f64,
    /// Fraction of PA-adjacent pairs still DA-adjacent.
    pub adjacency_survival: f64,
}

/// The templating-decay experiment.
#[derive(Debug)]
pub struct TemplatingDecay {
    bank: ShadowBank,
    /// DA of each PA row at templating time.
    learned: Vec<u32>,
    rows: u32,
    rng: Xoshiro256,
    rfms_done: u32,
}

impl TemplatingDecay {
    /// Sets up a bank and snapshots the attacker's learned mapping.
    pub fn new(cfg: ShadowConfig, seed: u64) -> Self {
        let bank = ShadowBank::new(cfg, Box::new(PrinceRng::new(seed, seed ^ 0xD0E5)));
        let rows = cfg.subarrays * cfg.rows_per_subarray;
        let learned = (0..rows).map(|pa| bank.translate(pa)).collect();
        TemplatingDecay {
            bank,
            learned,
            rows,
            rng: Xoshiro256::seed_from_u64(seed),
            rfms_done: 0,
        }
    }

    /// Runs `rfms` more intervals of `acts_per_rfm` uniform activations
    /// each, then samples survival.
    pub fn advance(&mut self, rfms: u32, acts_per_rfm: u32) -> DecaySample {
        for _ in 0..rfms {
            for _ in 0..acts_per_rfm {
                let pa = self.rng.gen_range(0, self.rows as u64) as u32;
                self.bank.note_activate(pa);
            }
            self.bank.on_rfm();
            self.rfms_done += 1;
        }
        self.sample()
    }

    /// Measures survival without advancing.
    pub fn sample(&self) -> DecaySample {
        let still_there = (0..self.rows)
            .filter(|&pa| self.bank.translate(pa) == self.learned[pa as usize])
            .count();
        let mut adjacent_then = 0usize;
        let mut adjacent_now = 0usize;
        for pa in 0..self.rows - 1 {
            let was = self.learned[pa as usize].abs_diff(self.learned[pa as usize + 1]) == 1;
            if was {
                adjacent_then += 1;
                let is = self
                    .bank
                    .translate(pa)
                    .abs_diff(self.bank.translate(pa + 1))
                    == 1;
                if is {
                    adjacent_now += 1;
                }
            }
        }
        DecaySample {
            rfms: self.rfms_done,
            location_survival: still_there as f64 / self.rows as f64,
            adjacency_survival: if adjacent_then == 0 {
                0.0
            } else {
                adjacent_now as f64 / adjacent_then as f64
            },
        }
    }

    /// RFMs after which location survival first drops below `threshold`
    /// (binary-search-free direct walk; returns the RFM count).
    pub fn half_life(cfg: ShadowConfig, acts_per_rfm: u32, threshold: f64, seed: u64) -> u32 {
        let mut exp = TemplatingDecay::new(cfg, seed);
        loop {
            let s = exp.advance(8, acts_per_rfm);
            if s.location_survival < threshold {
                return s.rfms;
            }
            // Bail out for degenerate configs (nothing decays without rows).
            if s.rfms > 1_000_000 {
                return s.rfms;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ShadowConfig {
        ShadowConfig {
            subarrays: 8,
            rows_per_subarray: 64,
        }
    }

    #[test]
    fn survival_starts_at_one() {
        let exp = TemplatingDecay::new(cfg(), 7);
        let s = exp.sample();
        assert_eq!(s.location_survival, 1.0);
        assert_eq!(s.adjacency_survival, 1.0);
        assert_eq!(s.rfms, 0);
    }

    #[test]
    fn survival_decays_monotonically_ish() {
        let mut exp = TemplatingDecay::new(cfg(), 7);
        let s1 = exp.advance(32, 16);
        let s2 = exp.advance(128, 16);
        assert!(s1.location_survival < 1.0, "no decay after 32 RFMs");
        assert!(
            s2.location_survival <= s1.location_survival + 0.05,
            "decay reversed: {} then {}",
            s1.location_survival,
            s2.location_survival
        );
    }

    #[test]
    fn adjacency_decays_faster_than_location() {
        // A pair survives only if *both* endpoints stay put (or move
        // together, which is rare), so adjacency decays at least as fast.
        let mut exp = TemplatingDecay::new(cfg(), 21);
        let s = exp.advance(96, 16);
        assert!(
            s.adjacency_survival <= s.location_survival + 0.02,
            "adjacency {} outlived location {}",
            s.adjacency_survival,
            s.location_survival
        );
    }

    #[test]
    fn half_life_is_finite_and_seed_stable() {
        let h1 = TemplatingDecay::half_life(cfg(), 16, 0.5, 3);
        let h2 = TemplatingDecay::half_life(cfg(), 16, 0.5, 3);
        assert_eq!(h1, h2, "determinism");
        assert!(h1 > 0 && h1 < 100_000, "half-life {h1} implausible");
    }

    #[test]
    fn eventually_mostly_randomized() {
        let mut exp = TemplatingDecay::new(cfg(), 5);
        let s = exp.advance(4096, 16);
        assert!(
            s.location_survival < 0.1,
            "template still {}% valid after 4096 RFMs",
            s.location_survival * 100.0
        );
    }
}
