//! # shadow-analysis
//!
//! The paper's analysis models, built as substitutes for the proprietary
//! tooling the authors used (substitutions documented in DESIGN.md §2):
//!
//! * [`power`] — a Micron-power-calculator-style energy model: per-command
//!   energies × the command counts a simulation produced, plus per-scheme
//!   extras (SHADOW's remapping-row access on every ACT, shuffle energy per
//!   RFM). Drives the Fig. 12 reproduction.
//! * [`area`] — a parametric area accounting model for the SHADOW logic
//!   (§VII-D: 0.35 mm², 0.47% of a DDR5 chip, 0.6% capacity) and for the
//!   counter structures of the baselines, exposing the headline scaling
//!   argument: tracker area grows as `H_cnt` falls, SHADOW stays flat.
//! * [`rc_timing`] — a first-order RC charge-sharing model standing in for
//!   the paper's SPICE simulation (Table III): bitline/cell capacitance
//!   ratios, the isolation transistor's ~100× capacitance reduction, and
//!   distributed-RC wire delay for the paired-subarray DA traversal.
//! * [`montecarlo`] — a fast abstract simulation of the SHADOW shuffle
//!   game, cross-checking the Appendix XI analytic probabilities at
//!   down-scaled parameters where events are frequent enough to measure.
//! * [`templating`] — quantifies §III-A's templating-defeat claim: how fast
//!   an attacker's learned PA→DA knowledge decays under shuffling.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod montecarlo;
pub mod power;
pub mod rc_timing;
pub mod templating;

pub use area::{AreaModel, AreaReport};
pub use montecarlo::{McParams, MonteCarlo};
pub use power::{PowerModel, PowerReport, SchemeEnergy};
pub use rc_timing::RcTimingModel;
pub use templating::TemplatingDecay;
