//! DRAM organization: channels, ranks, bank groups, banks, subarrays, rows.
//!
//! Matches the hierarchy of paper Fig. 1. Two presets mirror the paper's two
//! experimental platforms: a DDR4-2666 2-rank DIMM (Table IV) and a
//! DDR5-4800 rank with 32 banks (§VII-A).

use std::fmt;

/// A flat bank identifier, unique across the whole memory system.
///
/// Flattening (channel, rank, bank) into one index keeps hot-loop state in
/// dense vectors instead of nested maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub u32);

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// A row index within one bank (the *DRAM device address* row, DA).
pub type RowId = u32;

/// A subarray index within one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubarrayId(pub u32);

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sa{}", self.0)
    }
}

/// Static geometry of the memory system.
///
/// This is a passive configuration struct; fields are public by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Independent memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Subarrays per bank.
    pub subarrays_per_bank: u32,
    /// Ordinary (MC-addressable) rows per subarray. SHADOW adds one empty
    /// row and one remapping-row per subarray *on top of* these.
    pub rows_per_subarray: u32,
    /// Columns per row (cache-line-sized accesses).
    pub columns: u32,
    /// Bytes per column access (one burst).
    pub column_bytes: u32,
}

impl DramGeometry {
    /// The paper's actual-system DIMM: DDR4, 1 channel slice, 2 ranks,
    /// 4 bank groups × 4 banks, 64K rows per bank (128 subarrays × 512 rows).
    pub fn ddr4_single_rank() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 2,
            bank_groups: 4,
            banks_per_group: 4,
            subarrays_per_bank: 128,
            rows_per_subarray: 512,
            columns: 128,
            column_bytes: 64,
        }
    }

    /// The paper's Table IV system: 4 channels × 1 DIMM × 2 ranks of
    /// DDR4-2666.
    pub fn ddr4_4ch() -> Self {
        DramGeometry {
            channels: 4,
            ..Self::ddr4_single_rank()
        }
    }

    /// The DDR5-4800 configuration of §VII-A: 32 banks per rank
    /// (8 bank groups × 4 banks).
    pub fn ddr5_rank() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 1,
            bank_groups: 8,
            banks_per_group: 4,
            subarrays_per_bank: 128,
            rows_per_subarray: 512,
            columns: 128,
            column_bytes: 64,
        }
    }

    /// DDR5-4800 system used for the architectural simulations (Fig. 11):
    /// 4 channels, 2 ranks.
    pub fn ddr5_4ch() -> Self {
        DramGeometry {
            channels: 4,
            ranks_per_channel: 2,
            ..Self::ddr5_rank()
        }
    }

    /// A deliberately tiny geometry for fast unit tests.
    pub fn tiny() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 1,
            bank_groups: 1,
            banks_per_group: 2,
            subarrays_per_bank: 4,
            rows_per_subarray: 16,
            columns: 8,
            column_bytes: 64,
        }
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank()
    }

    /// Total ranks in the system.
    pub fn total_ranks(&self) -> u32 {
        self.channels * self.ranks_per_channel
    }

    /// MC-addressable rows per bank.
    pub fn rows_per_bank(&self) -> u32 {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Total MC-addressable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64
            * self.rows_per_bank() as u64
            * self.columns as u64
            * self.column_bytes as u64
    }

    /// Flattens (channel, rank, bank-in-rank) to a [`BankId`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn bank_id(&self, channel: u32, rank: u32, bank_in_rank: u32) -> BankId {
        assert!(channel < self.channels, "channel {channel} out of range");
        assert!(rank < self.ranks_per_channel, "rank {rank} out of range");
        assert!(
            bank_in_rank < self.banks_per_rank(),
            "bank {bank_in_rank} out of range"
        );
        BankId((channel * self.ranks_per_channel + rank) * self.banks_per_rank() + bank_in_rank)
    }

    /// Recovers (channel, rank, bank-in-rank) from a [`BankId`].
    pub fn bank_coords(&self, bank: BankId) -> (u32, u32, u32) {
        let bpr = self.banks_per_rank();
        let bank_in_rank = bank.0 % bpr;
        let cr = bank.0 / bpr;
        let rank = cr % self.ranks_per_channel;
        let channel = cr / self.ranks_per_channel;
        (channel, rank, bank_in_rank)
    }

    /// Flat rank index (0..total_ranks) of a bank.
    pub fn rank_of(&self, bank: BankId) -> u32 {
        bank.0 / self.banks_per_rank()
    }

    /// Channel index of a bank.
    pub fn channel_of(&self, bank: BankId) -> u32 {
        self.bank_coords(bank).0
    }

    /// Subarray containing a row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn subarray_of(&self, row: RowId) -> SubarrayId {
        assert!(row < self.rows_per_bank(), "row {row} out of range");
        SubarrayId(row / self.rows_per_subarray)
    }

    /// Index of a row within its subarray.
    pub fn index_in_subarray(&self, row: RowId) -> u32 {
        row % self.rows_per_subarray
    }

    /// First row of a subarray.
    pub fn subarray_base(&self, sa: SubarrayId) -> RowId {
        sa.0 * self.rows_per_subarray
    }

    /// The *paired* subarray of `sa` under SHADOW's subarray pairing (§V-B).
    ///
    /// With the open-bitline layout the paper pairs subarrays that sandwich
    /// another one: even subarrays pair `s ↔ s+2` within even/odd groups;
    /// we model the paper's "every two subarrays" pairing as the
    /// distance-2 partner, wrapping at the bank edge.
    pub fn paired_subarray(&self, sa: SubarrayId) -> SubarrayId {
        let n = self.subarrays_per_bank;
        debug_assert!(sa.0 < n);
        // Pair i <-> i+2 inside blocks of 4 (0<->2, 1<->3), so a pair always
        // sandwiches one subarray, matching Fig. 5. Banks have a multiple of
        // 4 subarrays in all presets; fall back to XOR with 1 otherwise.
        if n.is_multiple_of(4) {
            SubarrayId(sa.0 ^ 2)
        } else {
            SubarrayId(sa.0 ^ 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_capacity_is_16gb_per_2rank_dimm_class() {
        let g = DramGeometry::ddr4_single_rank();
        // 2 ranks * 16 banks * 64K rows * 8KB/row = 16 GiB
        assert_eq!(g.rows_per_bank(), 65536);
        assert_eq!(g.total_banks(), 32);
        assert_eq!(g.capacity_bytes(), 16 * (1u64 << 30));
    }

    #[test]
    fn ddr5_rank_has_32_banks() {
        let g = DramGeometry::ddr5_rank();
        assert_eq!(g.banks_per_rank(), 32);
    }

    #[test]
    fn bank_id_roundtrip() {
        let g = DramGeometry::ddr4_4ch();
        for ch in 0..g.channels {
            for rk in 0..g.ranks_per_channel {
                for b in 0..g.banks_per_rank() {
                    let id = g.bank_id(ch, rk, b);
                    assert_eq!(g.bank_coords(id), (ch, rk, b));
                    assert_eq!(g.channel_of(id), ch);
                }
            }
        }
    }

    #[test]
    fn bank_ids_are_dense_and_unique() {
        let g = DramGeometry::ddr4_4ch();
        let mut seen = vec![false; g.total_banks() as usize];
        for ch in 0..g.channels {
            for rk in 0..g.ranks_per_channel {
                for b in 0..g.banks_per_rank() {
                    let id = g.bank_id(ch, rk, b).0 as usize;
                    assert!(!seen[id], "duplicate id {id}");
                    seen[id] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn bank_id_validates_channel() {
        let g = DramGeometry::tiny();
        let _ = g.bank_id(5, 0, 0);
    }

    #[test]
    fn subarray_math() {
        let g = DramGeometry::ddr4_single_rank();
        assert_eq!(g.subarray_of(0), SubarrayId(0));
        assert_eq!(g.subarray_of(511), SubarrayId(0));
        assert_eq!(g.subarray_of(512), SubarrayId(1));
        assert_eq!(g.index_in_subarray(513), 1);
        assert_eq!(g.subarray_base(SubarrayId(3)), 1536);
    }

    #[test]
    #[should_panic]
    fn subarray_of_validates_row() {
        let g = DramGeometry::tiny();
        let _ = g.subarray_of(g.rows_per_bank());
    }

    #[test]
    fn pairing_is_an_involution_and_not_identity() {
        let g = DramGeometry::ddr4_single_rank();
        for s in 0..g.subarrays_per_bank {
            let p = g.paired_subarray(SubarrayId(s));
            assert_ne!(p.0, s, "subarray must not pair with itself");
            assert_eq!(
                g.paired_subarray(p),
                SubarrayId(s),
                "pairing must be symmetric"
            );
        }
    }

    #[test]
    fn pairing_sandwiches_one_subarray() {
        // Distance between pairs is 2 (open-bitline constraint, Fig. 5).
        let g = DramGeometry::ddr4_single_rank();
        for s in 0..g.subarrays_per_bank {
            let p = g.paired_subarray(SubarrayId(s));
            assert_eq!((p.0 as i64 - s as i64).abs(), 2);
        }
    }

    #[test]
    fn rank_of_groups_banks() {
        let g = DramGeometry::ddr4_single_rank();
        assert_eq!(g.rank_of(g.bank_id(0, 0, 15)), 0);
        assert_eq!(g.rank_of(g.bank_id(0, 1, 0)), 1);
    }
}
