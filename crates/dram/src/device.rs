//! The assembled DRAM device: banks + ranks + channel data buses.
//!
//! [`DramDevice`] is a *passive* timing model: the memory controller asks it
//! for earliest-legal issue cycles, then commits commands with
//! [`issue`](DramDevice::issue). In debug builds every commit re-validates
//! the governing constraints, so scheduler bugs surface as panics rather
//! than silently optimistic results.

use crate::bank::{BankPhase, BankState};
use crate::command::DramCommand;
use crate::geometry::{BankId, DramGeometry, RowId};
use crate::rank::RankState;
use crate::timing::TimingParams;
use crate::trace::CommandTrace;
use shadow_sim::ring::RingLog;
use shadow_sim::stats::Counter;
use shadow_sim::time::Cycle;

/// Outcome of committing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IssueResult {
    /// For RD: cycle the read data burst completes. For WR: cycle write
    /// recovery completes. For REF/RFM: cycle the blocked resource frees.
    pub done_at: Option<Cycle>,
}

/// A cycle-level DRAM device model.
#[derive(Debug, Clone)]
pub struct DramDevice {
    geometry: DramGeometry,
    timing: TimingParams,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    /// Per-channel cycle at which the data bus frees.
    bus_free: Vec<Cycle>,
    /// Per-rank earliest RD after the last WR (write-to-read turnaround).
    wtr_ready: Vec<Cycle>,
    /// Per-channel last CAS of any bank group (tCCD_S spacing).
    last_cas_any: Vec<Option<Cycle>>,
    /// Per-channel, per-bank-group last CAS (tCCD_L applies between
    /// consecutive CAS *to the same group*, not only adjacent commands).
    last_cas_group: Vec<Vec<Option<Cycle>>>,
    /// Ring buffer of recent commands (debugging aid; see
    /// [`DramDevice::recent_commands`]).
    history: RingLog<(Cycle, DramCommand)>,
    /// Optional full command recorder for the conformance oracle. `None`
    /// (the default) costs one branch per command.
    trace: Option<CommandTrace>,
    stats: Counter,
    /// Per-bank (channel, rank, bank-group) coordinates, precomputed: the
    /// scheduler probes `earliest_*` far more often than it commits, and
    /// the geometry decode costs one integer division per coordinate.
    coords: Vec<(u32, u32, u32)>,
}

/// Depth of the command-history ring.
const HISTORY_DEPTH: usize = 64;

impl DramDevice {
    /// Builds a device from geometry and timing.
    ///
    /// # Panics
    ///
    /// Panics if the timing set fails [`TimingParams::validate`].
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        if let Err(e) = timing.validate() {
            panic!("invalid timing parameters: {e}");
        }
        let bpg = geometry.banks_per_group;
        let coords = (0..geometry.total_banks())
            .map(|b| {
                let bank = BankId(b);
                let (ch, _, bir) = geometry.bank_coords(bank);
                (ch, geometry.rank_of(bank), bir / bpg)
            })
            .collect();
        DramDevice {
            geometry,
            timing,
            coords,
            banks: vec![BankState::new(); geometry.total_banks() as usize],
            ranks: (0..geometry.total_ranks())
                .map(|_| RankState::new(&timing))
                .collect(),
            bus_free: vec![0; geometry.channels as usize],
            wtr_ready: vec![0; geometry.total_ranks() as usize],
            last_cas_any: vec![None; geometry.channels as usize],
            last_cas_group: vec![
                vec![None; geometry.bank_groups as usize];
                geometry.channels as usize
            ],
            history: RingLog::new(HISTORY_DEPTH),
            trace: None,
            stats: Counter::new(),
        }
    }

    /// Turns on command tracing with a ring of `depth` entries. Replaces any
    /// previously collected trace.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` — disable tracing with
    /// [`disable_trace`](DramDevice::disable_trace) instead.
    pub fn enable_trace(&mut self, depth: usize) {
        self.trace = Some(CommandTrace::new(depth));
    }

    /// Turns off command tracing, discarding any collected trace.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The collected command trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&CommandTrace> {
        self.trace.as_ref()
    }

    /// Drains the collected trace (oldest first), leaving tracing enabled.
    /// Returns `None` if tracing is off.
    pub fn take_trace(&mut self) -> Option<Vec<crate::trace::CommandRecord>> {
        self.trace.as_mut().map(|t| t.take())
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The timing parameter set.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Mutable timing access (mitigations adjust `t_rcd_extra`; experiments
    /// sweep tRCD). Re-validated on the next [`DramDevice::issue`].
    pub fn timing_mut(&mut self) -> &mut TimingParams {
        &mut self.timing
    }

    /// Command counters (ACT/PRE/RD/WR/REF/RFM) for the power model.
    pub fn stats(&self) -> &Counter {
        &self.stats
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: BankId) -> Option<RowId> {
        self.banks[bank.0 as usize].open_row()
    }

    /// Lifetime ACT count of `bank`.
    pub fn act_count(&self, bank: BankId) -> u64 {
        self.banks[bank.0 as usize].act_count()
    }

    fn channel_of(&self, bank: BankId) -> u32 {
        self.coords[bank.0 as usize].0
    }

    fn rank_of(&self, bank: BankId) -> u32 {
        self.coords[bank.0 as usize].1
    }

    fn bank_group_of(&self, bank: BankId) -> u32 {
        self.coords[bank.0 as usize].2
    }

    /// Earliest cycle ≥ `now` at which `ACT bank` is legal.
    pub fn earliest_act(&self, bank: BankId, now: Cycle) -> Cycle {
        let b = &self.banks[bank.0 as usize];
        let r = &self.ranks[self.rank_of(bank) as usize];
        now.max(b.earliest_act())
            .max(r.earliest_act(self.bank_group_of(bank), &self.timing))
    }

    /// Earliest cycle ≥ `now` at which `PRE bank` is legal.
    pub fn earliest_pre(&self, bank: BankId, now: Cycle) -> Cycle {
        now.max(self.banks[bank.0 as usize].earliest_pre())
    }

    /// Earliest cycle ≥ `now` at which `RD bank` is legal (bank CAS timing,
    /// channel data-bus availability, and the rank's write-to-read
    /// turnaround).
    pub fn earliest_rd(&self, bank: BankId, now: Cycle) -> Cycle {
        let b = &self.banks[bank.0 as usize];
        let ch = self.channel_of(bank) as usize;
        let rank = self.rank_of(bank) as usize;
        let cas = now
            .max(b.earliest_cas())
            .max(self.wtr_ready[rank])
            .max(self.ccd_ready(ch, self.bank_group_of(bank)));
        // Data burst [t+CL, t+CL+BL) must start after the bus frees.
        let bus = self.bus_free[ch].saturating_sub(self.timing.t_cl);
        cas.max(bus)
    }

    /// Channel-level CAS spacing: tCCD_S after any CAS, tCCD_L after the
    /// last CAS to the same bank group (which need not be the most recent
    /// command — an A-B-A group pattern still owes tCCD_L between the As).
    fn ccd_ready(&self, channel: usize, bank_group: u32) -> Cycle {
        let short = self.last_cas_any[channel].map_or(0, |t| t + self.timing.t_ccd_s);
        let long = self.last_cas_group[channel][bank_group as usize]
            .map_or(0, |t| t + self.timing.t_ccd_l);
        short.max(long)
    }

    fn note_cas(&mut self, channel: usize, bank_group: u32, t: Cycle) {
        self.last_cas_any[channel] = Some(t);
        self.last_cas_group[channel][bank_group as usize] = Some(t);
    }

    /// Earliest cycle ≥ `now` at which `WR bank` is legal.
    pub fn earliest_wr(&self, bank: BankId, now: Cycle) -> Cycle {
        let b = &self.banks[bank.0 as usize];
        let ch = self.channel_of(bank) as usize;
        let cas = now
            .max(b.earliest_cas())
            .max(self.ccd_ready(ch, self.bank_group_of(bank)));
        let bus = self.bus_free[ch].saturating_sub(self.timing.t_cwl);
        cas.max(bus)
    }

    /// Earliest cycle ≥ `now` at which a REF to `rank` may start (requires
    /// all banks of the rank precharged and past their ACT-ready times).
    pub fn earliest_ref(&self, rank: u32, now: Cycle) -> Cycle {
        let bpr = self.geometry.banks_per_rank();
        let mut t = now;
        for b in 0..bpr {
            let id = rank * bpr + b;
            let bank = &self.banks[id as usize];
            debug_assert_eq!(
                bank.phase(),
                BankPhase::Idle,
                "REF requires precharged banks"
            );
            t = t.max(bank.earliest_act());
        }
        t
    }

    /// Whether an auto-refresh is due on `rank` at `now`.
    pub fn refresh_due(&self, rank: u32, now: Cycle) -> bool {
        self.ranks[rank as usize].refresh_due(now)
    }

    /// Whether `rank`'s refresh debt has hit the JEDEC postponement limit.
    pub fn refresh_urgent(&self, rank: u32, now: Cycle) -> bool {
        self.ranks[rank as usize].must_refresh(now, &self.timing)
    }

    /// Rows covered by one REF in each bank of a rank.
    pub fn rows_per_ref(&self, rank: u32) -> u32 {
        self.ranks[rank as usize].rows_per_ref(self.geometry.rows_per_bank(), &self.timing)
    }

    /// Commits `cmd` at cycle `t`.
    ///
    /// Returns per-command completion info. For `Ref`, the covered row
    /// block is readable via [`DramDevice::refresh_row_ptr`] *before* the
    /// call (the pointer advances on issue).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on any timing or state violation.
    pub fn issue(&mut self, cmd: DramCommand, t: Cycle) -> IssueResult {
        self.stats.inc(cmd.mnemonic());
        self.history.push((t, cmd));
        if let Some(trace) = &mut self.trace {
            trace.record(t, cmd);
        }
        match cmd {
            DramCommand::Act { bank, row } => {
                debug_assert!(row < self.geometry.rows_per_bank(), "row out of range");
                debug_assert!(t >= self.earliest_act(bank, t));
                let rank = self.rank_of(bank) as usize;
                let group = self.bank_group_of(bank);
                self.banks[bank.0 as usize].on_act(t, row, &self.timing);
                self.ranks[rank].on_act(t, group, &self.timing);
                IssueResult::default()
            }
            DramCommand::Pre { bank } => {
                self.banks[bank.0 as usize].on_pre(t, &self.timing);
                IssueResult::default()
            }
            DramCommand::Rd { bank } => {
                let done = self.banks[bank.0 as usize].on_rd(t, &self.timing);
                let ch = self.channel_of(bank) as usize;
                self.bus_free[ch] = done;
                self.note_cas(ch, self.bank_group_of(bank), t);
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Wr { bank } => {
                let done = self.banks[bank.0 as usize].on_wr(t, &self.timing);
                let ch = self.channel_of(bank) as usize;
                let rank = self.rank_of(bank) as usize;
                let data_end = t + self.timing.t_cwl + self.timing.t_bl;
                self.bus_free[ch] = data_end;
                self.note_cas(ch, self.bank_group_of(bank), t);
                // Write-to-read turnaround: internal write completion must
                // precede the next rank-internal read (tWTR_L conservative).
                self.wtr_ready[rank] = self.wtr_ready[rank].max(data_end + self.timing.t_wtr_l);
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Ref { rank } => {
                let (done, _ptr) = self.ranks[rank as usize].on_refresh(
                    t,
                    self.geometry.rows_per_bank(),
                    &self.timing,
                );
                let bpr = self.geometry.banks_per_rank();
                for b in 0..bpr {
                    self.banks[(rank * bpr + b) as usize].block_until(done);
                }
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Rfm { bank } => {
                let done = t + self.timing.t_rfm;
                self.banks[bank.0 as usize].block_until(done);
                IssueResult {
                    done_at: Some(done),
                }
            }
        }
    }

    /// The sequential refresh pointer of `rank` (row block refreshed by the
    /// *next* REF).
    pub fn refresh_row_ptr(&self, rank: u32) -> u32 {
        self.ranks[rank as usize].refresh_row_ptr()
    }

    /// Total REF commands issued to `rank`.
    pub fn ref_count(&self, rank: u32) -> u64 {
        self.ranks[rank as usize].ref_count()
    }

    /// The most recent commands (oldest first), for scheduler debugging.
    pub fn recent_commands(&self) -> impl Iterator<Item = (Cycle, DramCommand)> + '_ {
        self.history.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DramDevice {
        DramDevice::new(DramGeometry::tiny(), TimingParams::tiny())
    }

    #[test]
    fn act_read_pre_sequence() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        let t0 = d.earliest_act(bank, 0);
        d.issue(DramCommand::Act { bank, row: 3 }, t0);
        assert_eq!(d.open_row(bank), Some(3));
        let tr = d.earliest_rd(bank, t0);
        let res = d.issue(DramCommand::Rd { bank }, tr);
        assert!(res.done_at.unwrap() > tr);
        let tpre = d.earliest_pre(bank, tr);
        d.issue(DramCommand::Pre { bank }, tpre);
        assert_eq!(d.open_row(bank), None);
    }

    #[test]
    fn command_stats_counted() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 0 }, 0);
        let tr = d.earliest_rd(bank, 0);
        d.issue(DramCommand::Rd { bank }, tr);
        assert_eq!(d.stats().get("ACT"), 1);
        assert_eq!(d.stats().get("RD"), 1);
    }

    #[test]
    fn bus_contention_serializes_reads_across_banks() {
        let mut d = dev();
        let tp = *d.timing();
        let b0 = d.geometry().bank_id(0, 0, 0);
        let b1 = d.geometry().bank_id(0, 0, 1);
        d.issue(DramCommand::Act { bank: b0, row: 0 }, 0);
        let t1 = d.earliest_act(b1, 0);
        d.issue(DramCommand::Act { bank: b1, row: 0 }, t1);
        let r0 = d.earliest_rd(b0, t1);
        let done0 = d.issue(DramCommand::Rd { bank: b0 }, r0).done_at.unwrap();
        // Second read's data cannot start before the first burst ends.
        let r1 = d.earliest_rd(b1, r0);
        assert!(r1 + tp.t_cl >= done0, "read bursts overlap on the bus");
    }

    #[test]
    fn refresh_blocks_whole_rank() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        let other = d.geometry().bank_id(0, 0, 1);
        let t = d.earliest_ref(0, 0);
        let done = d.issue(DramCommand::Ref { rank: 0 }, t).done_at.unwrap();
        assert_eq!(d.earliest_act(bank, t), done);
        assert_eq!(d.earliest_act(other, t), done);
        assert_eq!(d.ref_count(0), 1);
    }

    #[test]
    fn rfm_blocks_only_target_bank() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        let other = d.geometry().bank_id(0, 0, 1);
        let done = d.issue(DramCommand::Rfm { bank }, 0).done_at.unwrap();
        assert_eq!(done, d.timing().t_rfm);
        assert_eq!(d.earliest_act(bank, 0), done);
        // The sibling bank only sees rank-level constraints (none yet).
        assert_eq!(d.earliest_act(other, 0), 0);
    }

    #[test]
    fn refresh_due_tracks_trefi() {
        let d = dev();
        let tp = *d.timing();
        assert!(!d.refresh_due(0, tp.t_refi - 1));
        assert!(d.refresh_due(0, tp.t_refi));
    }

    #[test]
    fn trcd_extra_flows_to_read_latency() {
        let mut d = dev();
        d.timing_mut().t_rcd_extra = 4;
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 0 }, 0);
        let tr = d.earliest_rd(bank, 0);
        assert_eq!(tr, d.timing().t_rcd + 4);
    }

    #[test]
    #[should_panic]
    fn invalid_timing_rejected() {
        let mut tp = TimingParams::tiny();
        tp.t_rc = 0;
        let _ = DramDevice::new(DramGeometry::tiny(), tp);
    }

    #[test]
    fn same_group_cas_spacing_is_tccd_l() {
        let mut d = dev();
        let tp = *d.timing();
        // tiny geometry: one bank group; banks 0 and 1 share it.
        let b0 = d.geometry().bank_id(0, 0, 0);
        let b1 = d.geometry().bank_id(0, 0, 1);
        d.issue(DramCommand::Act { bank: b0, row: 0 }, 0);
        let t1 = d.earliest_act(b1, 0);
        d.issue(DramCommand::Act { bank: b1, row: 0 }, t1);
        let r0 = d.earliest_rd(b0, t1);
        d.issue(DramCommand::Rd { bank: b0 }, r0);
        let r1 = d.earliest_rd(b1, r0);
        assert!(
            r1 >= r0 + tp.t_ccd_l,
            "same-group CAS at {r1} < {} + tCCD_L",
            r0
        );
    }

    #[test]
    fn command_history_rings() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 3 }, 0);
        let tr = d.earliest_rd(bank, 0);
        d.issue(DramCommand::Rd { bank }, tr);
        let hist: Vec<_> = d.recent_commands().collect();
        assert_eq!(hist.len(), 2);
        assert!(matches!(hist[0].1, DramCommand::Act { row: 3, .. }));
        assert!(matches!(hist[1].1, DramCommand::Rd { .. }));
        // The ring is bounded.
        for i in 0..200u64 {
            let t = d.earliest_pre(bank, tr + i * 100);
            let _ = t; // keep simple: reissue ACT/PRE pairs
        }
    }

    #[test]
    fn trace_captures_committed_commands() {
        let mut d = dev();
        assert!(d.trace().is_none());
        d.enable_trace(16);
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 7 }, 0);
        let tr = d.earliest_rd(bank, 0);
        d.issue(DramCommand::Rd { bank }, tr);
        let trace = d.trace().unwrap();
        assert!(trace.is_complete());
        assert_eq!(trace.len(), 2);
        let recs = d.take_trace().unwrap();
        assert!(matches!(recs[0].cmd, DramCommand::Act { row: 7, .. }));
        assert_eq!(recs[1].cycle, tr);
        assert!(
            d.trace().unwrap().is_empty(),
            "take_trace leaves tracing on"
        );
        d.disable_trace();
        assert!(d.trace().is_none());
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let mut d = dev();
        let tp = *d.timing();
        let b0 = d.geometry().bank_id(0, 0, 0);
        let b1 = d.geometry().bank_id(0, 0, 1);
        d.issue(DramCommand::Act { bank: b0, row: 0 }, 0);
        let t1 = d.earliest_act(b1, 0);
        d.issue(DramCommand::Act { bank: b1, row: 0 }, t1);
        let tw = d.earliest_wr(b0, t1);
        d.issue(DramCommand::Wr { bank: b0 }, tw);
        // A read on the *other* bank of the same rank still waits tWTR.
        let tr = d.earliest_rd(b1, tw);
        assert!(
            tr >= tw + tp.t_cwl + tp.t_bl + tp.t_wtr_l,
            "read at {tr} ignores write-to-read turnaround"
        );
    }

    #[test]
    fn tfaw_throttles_rapid_acts() {
        let mut d = DramDevice::new(DramGeometry::ddr4_single_rank(), TimingParams::ddr4_2666());
        let tp = *d.timing();
        let mut t = 0;
        let mut act_times = Vec::new();
        for i in 0..5 {
            let bank = d.geometry().bank_id(0, 0, i);
            t = d.earliest_act(bank, t);
            d.issue(DramCommand::Act { bank, row: 0 }, t);
            act_times.push(t);
        }
        assert!(
            act_times[4] - act_times[0] >= tp.t_faw,
            "five ACTs in {} < tFAW {}",
            act_times[4] - act_times[0],
            tp.t_faw
        );
    }
}
