//! The assembled DRAM device: banks + ranks + channel data buses.
//!
//! [`DramDevice`] is a *passive* timing model: the memory controller asks it
//! for earliest-legal issue cycles, then commits commands with
//! [`issue`](DramDevice::issue). In debug builds every commit re-validates
//! the governing constraints, so scheduler bugs surface as panics rather
//! than silently optimistic results.

use crate::command::DramCommand;
use crate::geometry::{BankId, DramGeometry, RowId};
use crate::lane::ChannelLane;
use crate::lut::GeometryLut;
use crate::timing::TimingParams;
use crate::trace::CommandTrace;
use shadow_sim::ring::RingLog;
use shadow_sim::stats::Counter;
use shadow_sim::time::Cycle;

/// Outcome of committing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IssueResult {
    /// For RD: cycle the read data burst completes. For WR: cycle write
    /// recovery completes. For REF/RFM: cycle the blocked resource frees.
    pub done_at: Option<Cycle>,
}

/// A cycle-level DRAM device model.
///
/// All bank/rank/bus timing state lives in per-channel [`ChannelLane`]s
/// (channels share no timing state); the device keeps the cross-channel
/// bookkeeping — stats, command history, the optional conformance trace —
/// and delegates timing queries to the owning lane. The channel-sharded
/// simulator borrows the lanes wholesale via
/// [`take_lanes`](DramDevice::take_lanes) for the duration of a run.
#[derive(Debug, Clone)]
pub struct DramDevice {
    geometry: DramGeometry,
    timing: TimingParams,
    lanes: Vec<ChannelLane>,
    /// Per-bank coordinate tables shared with the memory controller.
    lut: GeometryLut,
    /// Ring buffer of recent commands (debugging aid; see
    /// [`DramDevice::recent_commands`]).
    history: RingLog<(Cycle, DramCommand)>,
    /// Optional full command recorder for the conformance oracle. `None`
    /// (the default) costs one branch per command.
    trace: Option<CommandTrace>,
    stats: Counter,
}

/// Depth of the command-history ring.
const HISTORY_DEPTH: usize = 64;

impl DramDevice {
    /// Builds a device from geometry and timing.
    ///
    /// # Panics
    ///
    /// Panics if the timing set fails [`TimingParams::validate`].
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        if let Err(e) = timing.validate() {
            panic!("invalid timing parameters: {e}");
        }
        DramDevice {
            geometry,
            timing,
            lanes: (0..geometry.channels)
                .map(|ch| ChannelLane::new(ch, &geometry, &timing))
                .collect(),
            lut: GeometryLut::new(&geometry),
            history: RingLog::new(HISTORY_DEPTH),
            trace: None,
            stats: Counter::new(),
        }
    }

    /// Moves the per-channel lanes out of the device (for a sharded run).
    ///
    /// Until [`restore_lanes`](DramDevice::restore_lanes) puts them back,
    /// timing queries panic; bookkeeping ([`record`](DramDevice::record),
    /// trace, stats, history) keeps working.
    pub fn take_lanes(&mut self) -> Vec<ChannelLane> {
        debug_assert!(!self.lanes.is_empty(), "lanes already taken");
        std::mem::take(&mut self.lanes)
    }

    /// Returns lanes taken by [`take_lanes`](DramDevice::take_lanes).
    ///
    /// # Panics
    ///
    /// Panics if the lane count does not match the geometry.
    pub fn restore_lanes(&mut self, lanes: Vec<ChannelLane>) {
        assert_eq!(
            lanes.len(),
            self.geometry.channels as usize,
            "lane count mismatch"
        );
        self.lanes = lanes;
    }

    /// Turns on command tracing with a ring of `depth` entries. Replaces any
    /// previously collected trace.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` — disable tracing with
    /// [`disable_trace`](DramDevice::disable_trace) instead.
    pub fn enable_trace(&mut self, depth: usize) {
        self.trace = Some(CommandTrace::new(depth));
    }

    /// Turns off command tracing, discarding any collected trace.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The collected command trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&CommandTrace> {
        self.trace.as_ref()
    }

    /// Drains the collected trace (oldest first), leaving tracing enabled.
    /// Returns `None` if tracing is off.
    pub fn take_trace(&mut self) -> Option<Vec<crate::trace::CommandRecord>> {
        self.trace.as_mut().map(|t| t.take())
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The timing parameter set.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Mutable timing access (mitigations adjust `t_rcd_extra`; experiments
    /// sweep tRCD). Re-validated on the next [`DramDevice::issue`].
    pub fn timing_mut(&mut self) -> &mut TimingParams {
        &mut self.timing
    }

    /// Command counters (ACT/PRE/RD/WR/REF/RFM) for the power model.
    pub fn stats(&self) -> &Counter {
        &self.stats
    }

    /// The shared per-bank coordinate tables.
    pub fn lut(&self) -> &GeometryLut {
        &self.lut
    }

    #[inline]
    fn lane(&self, bank: BankId) -> &ChannelLane {
        &self.lanes[self.lut.channel_of(bank) as usize]
    }

    #[inline]
    fn rank_lane(&self, rank: u32) -> &ChannelLane {
        &self.lanes[(rank / self.geometry.ranks_per_channel) as usize]
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: BankId) -> Option<RowId> {
        self.lane(bank).open_row(bank)
    }

    /// Lifetime ACT count of `bank`.
    pub fn act_count(&self, bank: BankId) -> u64 {
        self.lane(bank).act_count(bank)
    }

    /// Earliest cycle ≥ `now` at which `ACT bank` is legal.
    pub fn earliest_act(&self, bank: BankId, now: Cycle) -> Cycle {
        self.lane(bank).earliest_act(bank, now, &self.timing)
    }

    /// Earliest cycle ≥ `now` at which `PRE bank` is legal.
    pub fn earliest_pre(&self, bank: BankId, now: Cycle) -> Cycle {
        self.lane(bank).earliest_pre(bank, now)
    }

    /// Earliest cycle ≥ `now` at which `RD bank` is legal (bank CAS timing,
    /// channel data-bus availability, and the rank's write-to-read
    /// turnaround).
    pub fn earliest_rd(&self, bank: BankId, now: Cycle) -> Cycle {
        self.lane(bank).earliest_rd(bank, now, &self.timing)
    }

    /// Earliest cycle ≥ `now` at which `WR bank` is legal.
    pub fn earliest_wr(&self, bank: BankId, now: Cycle) -> Cycle {
        self.lane(bank).earliest_wr(bank, now, &self.timing)
    }

    /// Earliest cycle ≥ `now` at which a REF to `rank` may start (requires
    /// all banks of the rank precharged and past their ACT-ready times).
    pub fn earliest_ref(&self, rank: u32, now: Cycle) -> Cycle {
        self.rank_lane(rank).earliest_ref(rank, now)
    }

    /// Whether an auto-refresh is due on `rank` at `now`.
    pub fn refresh_due(&self, rank: u32, now: Cycle) -> bool {
        self.rank_lane(rank).refresh_due(rank, now)
    }

    /// Whether `rank`'s refresh debt has hit the JEDEC postponement limit.
    pub fn refresh_urgent(&self, rank: u32, now: Cycle) -> bool {
        self.rank_lane(rank).refresh_urgent(rank, now, &self.timing)
    }

    /// Rows covered by one REF in each bank of a rank.
    pub fn rows_per_ref(&self, rank: u32) -> u32 {
        self.rank_lane(rank).rows_per_ref(rank, &self.timing)
    }

    /// Records `cmd` in the bookkeeping stream (stats, history, trace)
    /// without touching timing state.
    ///
    /// This is the bookkeeping half of [`issue`](DramDevice::issue); the
    /// sharded coordinator calls it while lanes apply state transitions on
    /// worker threads, preserving the canonical serial command order.
    pub fn record(&mut self, cmd: DramCommand, t: Cycle) {
        self.stats.inc(cmd.mnemonic());
        self.history.push((t, cmd));
        if let Some(trace) = &mut self.trace {
            trace.record(t, cmd);
        }
    }

    /// Commits `cmd` at cycle `t`.
    ///
    /// Returns per-command completion info. For `Ref`, the covered row
    /// block is readable via [`DramDevice::refresh_row_ptr`] *before* the
    /// call (the pointer advances on issue).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on any timing or state violation.
    pub fn issue(&mut self, cmd: DramCommand, t: Cycle) -> IssueResult {
        self.record(cmd, t);
        let ch = match cmd {
            DramCommand::Ref { rank } | DramCommand::Rfmab { rank } => {
                (rank / self.geometry.ranks_per_channel) as usize
            }
            DramCommand::Act { bank, .. }
            | DramCommand::Pre { bank }
            | DramCommand::Rd { bank }
            | DramCommand::Wr { bank }
            | DramCommand::Rfm { bank }
            | DramCommand::Rfmsb { bank } => self.lut.channel_of(bank) as usize,
        };
        self.lanes[ch].apply(cmd, t, &self.timing)
    }

    /// The sequential refresh pointer of `rank` (row block refreshed by the
    /// *next* REF).
    pub fn refresh_row_ptr(&self, rank: u32) -> u32 {
        self.rank_lane(rank).refresh_row_ptr(rank)
    }

    /// Total REF commands issued to `rank`.
    pub fn ref_count(&self, rank: u32) -> u64 {
        self.rank_lane(rank).ref_count(rank)
    }

    /// The most recent commands (oldest first), for scheduler debugging.
    pub fn recent_commands(&self) -> impl Iterator<Item = (Cycle, DramCommand)> + '_ {
        self.history.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DramDevice {
        DramDevice::new(DramGeometry::tiny(), TimingParams::tiny())
    }

    #[test]
    fn act_read_pre_sequence() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        let t0 = d.earliest_act(bank, 0);
        d.issue(DramCommand::Act { bank, row: 3 }, t0);
        assert_eq!(d.open_row(bank), Some(3));
        let tr = d.earliest_rd(bank, t0);
        let res = d.issue(DramCommand::Rd { bank }, tr);
        assert!(res.done_at.unwrap() > tr);
        let tpre = d.earliest_pre(bank, tr);
        d.issue(DramCommand::Pre { bank }, tpre);
        assert_eq!(d.open_row(bank), None);
    }

    #[test]
    fn command_stats_counted() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 0 }, 0);
        let tr = d.earliest_rd(bank, 0);
        d.issue(DramCommand::Rd { bank }, tr);
        assert_eq!(d.stats().get("ACT"), 1);
        assert_eq!(d.stats().get("RD"), 1);
    }

    #[test]
    fn bus_contention_serializes_reads_across_banks() {
        let mut d = dev();
        let tp = *d.timing();
        let b0 = d.geometry().bank_id(0, 0, 0);
        let b1 = d.geometry().bank_id(0, 0, 1);
        d.issue(DramCommand::Act { bank: b0, row: 0 }, 0);
        let t1 = d.earliest_act(b1, 0);
        d.issue(DramCommand::Act { bank: b1, row: 0 }, t1);
        let r0 = d.earliest_rd(b0, t1);
        let done0 = d.issue(DramCommand::Rd { bank: b0 }, r0).done_at.unwrap();
        // Second read's data cannot start before the first burst ends.
        let r1 = d.earliest_rd(b1, r0);
        assert!(r1 + tp.t_cl >= done0, "read bursts overlap on the bus");
    }

    #[test]
    fn refresh_blocks_whole_rank() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        let other = d.geometry().bank_id(0, 0, 1);
        let t = d.earliest_ref(0, 0);
        let done = d.issue(DramCommand::Ref { rank: 0 }, t).done_at.unwrap();
        assert_eq!(d.earliest_act(bank, t), done);
        assert_eq!(d.earliest_act(other, t), done);
        assert_eq!(d.ref_count(0), 1);
    }

    #[test]
    fn rfm_blocks_only_target_bank() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        let other = d.geometry().bank_id(0, 0, 1);
        let done = d.issue(DramCommand::Rfm { bank }, 0).done_at.unwrap();
        assert_eq!(done, d.timing().t_rfm);
        assert_eq!(d.earliest_act(bank, 0), done);
        // The sibling bank only sees rank-level constraints (none yet).
        assert_eq!(d.earliest_act(other, 0), 0);
    }

    #[test]
    fn refresh_due_tracks_trefi() {
        let d = dev();
        let tp = *d.timing();
        assert!(!d.refresh_due(0, tp.t_refi - 1));
        assert!(d.refresh_due(0, tp.t_refi));
    }

    #[test]
    fn trcd_extra_flows_to_read_latency() {
        let mut d = dev();
        d.timing_mut().t_rcd_extra = 4;
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 0 }, 0);
        let tr = d.earliest_rd(bank, 0);
        assert_eq!(tr, d.timing().t_rcd + 4);
    }

    #[test]
    #[should_panic]
    fn invalid_timing_rejected() {
        let mut tp = TimingParams::tiny();
        tp.t_rc = 0;
        let _ = DramDevice::new(DramGeometry::tiny(), tp);
    }

    #[test]
    fn same_group_cas_spacing_is_tccd_l() {
        let mut d = dev();
        let tp = *d.timing();
        // tiny geometry: one bank group; banks 0 and 1 share it.
        let b0 = d.geometry().bank_id(0, 0, 0);
        let b1 = d.geometry().bank_id(0, 0, 1);
        d.issue(DramCommand::Act { bank: b0, row: 0 }, 0);
        let t1 = d.earliest_act(b1, 0);
        d.issue(DramCommand::Act { bank: b1, row: 0 }, t1);
        let r0 = d.earliest_rd(b0, t1);
        d.issue(DramCommand::Rd { bank: b0 }, r0);
        let r1 = d.earliest_rd(b1, r0);
        assert!(
            r1 >= r0 + tp.t_ccd_l,
            "same-group CAS at {r1} < {} + tCCD_L",
            r0
        );
    }

    #[test]
    fn command_history_rings() {
        let mut d = dev();
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 3 }, 0);
        let tr = d.earliest_rd(bank, 0);
        d.issue(DramCommand::Rd { bank }, tr);
        let hist: Vec<_> = d.recent_commands().collect();
        assert_eq!(hist.len(), 2);
        assert!(matches!(hist[0].1, DramCommand::Act { row: 3, .. }));
        assert!(matches!(hist[1].1, DramCommand::Rd { .. }));
        // The ring is bounded.
        for i in 0..200u64 {
            let t = d.earliest_pre(bank, tr + i * 100);
            let _ = t; // keep simple: reissue ACT/PRE pairs
        }
    }

    #[test]
    fn trace_captures_committed_commands() {
        let mut d = dev();
        assert!(d.trace().is_none());
        d.enable_trace(16);
        let bank = d.geometry().bank_id(0, 0, 0);
        d.issue(DramCommand::Act { bank, row: 7 }, 0);
        let tr = d.earliest_rd(bank, 0);
        d.issue(DramCommand::Rd { bank }, tr);
        let trace = d.trace().unwrap();
        assert!(trace.is_complete());
        assert_eq!(trace.len(), 2);
        let recs = d.take_trace().unwrap();
        assert!(matches!(recs[0].cmd, DramCommand::Act { row: 7, .. }));
        assert_eq!(recs[1].cycle, tr);
        assert!(
            d.trace().unwrap().is_empty(),
            "take_trace leaves tracing on"
        );
        d.disable_trace();
        assert!(d.trace().is_none());
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let mut d = dev();
        let tp = *d.timing();
        let b0 = d.geometry().bank_id(0, 0, 0);
        let b1 = d.geometry().bank_id(0, 0, 1);
        d.issue(DramCommand::Act { bank: b0, row: 0 }, 0);
        let t1 = d.earliest_act(b1, 0);
        d.issue(DramCommand::Act { bank: b1, row: 0 }, t1);
        let tw = d.earliest_wr(b0, t1);
        d.issue(DramCommand::Wr { bank: b0 }, tw);
        // A read on the *other* bank of the same rank still waits tWTR.
        let tr = d.earliest_rd(b1, tw);
        assert!(
            tr >= tw + tp.t_cwl + tp.t_bl + tp.t_wtr_l,
            "read at {tr} ignores write-to-read turnaround"
        );
    }

    #[test]
    fn tfaw_throttles_rapid_acts() {
        let mut d = DramDevice::new(DramGeometry::ddr4_single_rank(), TimingParams::ddr4_2666());
        let tp = *d.timing();
        let mut t = 0;
        let mut act_times = Vec::new();
        for i in 0..5 {
            let bank = d.geometry().bank_id(0, 0, i);
            t = d.earliest_act(bank, t);
            d.issue(DramCommand::Act { bank, row: 0 }, t);
            act_times.push(t);
        }
        assert!(
            act_times[4] - act_times[0] >= tp.t_faw,
            "five ACTs in {} < tFAW {}",
            act_times[4] - act_times[0],
            tp.t_faw
        );
    }
}
