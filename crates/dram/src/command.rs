//! DRAM commands issued over the command/address bus.

use crate::geometry::{BankId, RowId};
use std::fmt;

/// A DRAM command, as sent by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Activate `row` in `bank` (open it into the row buffer).
    Act {
        /// Target bank.
        bank: BankId,
        /// Target row (DRAM device address).
        row: RowId,
    },
    /// Precharge `bank` (close the open row).
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Read a column burst from the open row of `bank`.
    Rd {
        /// Target bank.
        bank: BankId,
    },
    /// Write a column burst to the open row of `bank`.
    Wr {
        /// Target bank.
        bank: BankId,
    },
    /// Auto-refresh an entire rank (all banks busy for tRFC).
    Ref {
        /// Flat rank index.
        rank: u32,
    },
    /// Refresh-management command for one bank: grants the device tRFM of
    /// slack for in-DRAM mitigation (DDR5 §II-A).
    Rfm {
        /// Target bank.
        bank: BankId,
    },
    /// All-bank ABO recovery RFM: one recovery slot of a PRAC Alert
    /// Back-Off window, blocking the whole rank for tRFM while the device
    /// refreshes the rows its per-row counters flagged.
    Rfmab {
        /// Flat rank index.
        rank: u32,
    },
    /// Same-bank ABO recovery RFM: PRACtical's bank-isolated recovery —
    /// only the alerting bank blocks for tRFM, siblings keep serving.
    Rfmsb {
        /// Target bank.
        bank: BankId,
    },
}

impl DramCommand {
    /// Short mnemonic, used for command counting.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Act { .. } => "ACT",
            DramCommand::Pre { .. } => "PRE",
            DramCommand::Rd { .. } => "RD",
            DramCommand::Wr { .. } => "WR",
            DramCommand::Ref { .. } => "REF",
            DramCommand::Rfm { .. } => "RFM",
            DramCommand::Rfmab { .. } => "RFMAB",
            DramCommand::Rfmsb { .. } => "RFMSB",
        }
    }

    /// The bank this command targets, if bank-scoped.
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            DramCommand::Act { bank, .. }
            | DramCommand::Pre { bank }
            | DramCommand::Rd { bank }
            | DramCommand::Wr { bank }
            | DramCommand::Rfm { bank }
            | DramCommand::Rfmsb { bank } => Some(bank),
            DramCommand::Ref { .. } | DramCommand::Rfmab { .. } => None,
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DramCommand::Act { bank, row } => write!(f, "ACT {bank} row{row}"),
            DramCommand::Pre { bank } => write!(f, "PRE {bank}"),
            DramCommand::Rd { bank } => write!(f, "RD {bank}"),
            DramCommand::Wr { bank } => write!(f, "WR {bank}"),
            DramCommand::Ref { rank } => write!(f, "REF rank{rank}"),
            DramCommand::Rfm { bank } => write!(f, "RFM {bank}"),
            DramCommand::Rfmab { rank } => write!(f, "RFMAB rank{rank}"),
            DramCommand::Rfmsb { bank } => write!(f, "RFMSB {bank}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_distinct() {
        let cmds = [
            DramCommand::Act {
                bank: BankId(0),
                row: 1,
            },
            DramCommand::Pre { bank: BankId(0) },
            DramCommand::Rd { bank: BankId(0) },
            DramCommand::Wr { bank: BankId(0) },
            DramCommand::Ref { rank: 0 },
            DramCommand::Rfm { bank: BankId(0) },
            DramCommand::Rfmab { rank: 0 },
            DramCommand::Rfmsb { bank: BankId(0) },
        ];
        let mut names: Vec<_> = cmds.iter().map(|c| c.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn bank_accessor() {
        assert_eq!(DramCommand::Rd { bank: BankId(3) }.bank(), Some(BankId(3)));
        assert_eq!(DramCommand::Ref { rank: 1 }.bank(), None);
    }

    #[test]
    fn display_contains_operands() {
        let c = DramCommand::Act {
            bank: BankId(2),
            row: 77,
        };
        let s = c.to_string();
        assert!(s.contains("bank2") && s.contains("row77"));
    }
}
