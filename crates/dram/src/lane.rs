//! Per-channel device state: the [`ChannelLane`].
//!
//! DRAM channels share no timing state — the data bus, CAS spacing, write
//! turnaround, and every bank/rank constraint are all scoped to one channel.
//! [`ChannelLane`] packages exactly that slice of [`DramDevice`]
//! (`crate::device::DramDevice`) state so the channel-sharded simulator can
//! move each lane onto its own worker thread and step it independently,
//! while the serial engine iterates lanes in channel order with identical
//! results. The device's bookkeeping (stats, history, trace) stays behind
//! on the coordinator, which records commands in the canonical merge order.
//!
//! Lane methods accept *global* bank ids and flat rank indices and rebase
//! internally; debug builds assert the argument actually belongs to the
//! lane, so cross-channel leaks surface as panics.

use crate::bank::{BankPhase, BankState};
use crate::command::DramCommand;
use crate::device::IssueResult;
use crate::geometry::{BankId, DramGeometry, RowId};
use crate::rank::RankState;
use crate::timing::TimingParams;
use shadow_sim::time::Cycle;

/// The device-timing state of one DRAM channel.
#[derive(Debug, Clone)]
pub struct ChannelLane {
    channel: u32,
    /// Global id of this channel's first bank (channels own contiguous
    /// bank and rank ranges under the channel-major flattening).
    bank_base: u32,
    rank_base: u32,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    /// Cycle at which the channel data bus frees.
    bus_free: Cycle,
    /// Per-local-rank earliest RD after the last WR (write-to-read
    /// turnaround).
    wtr_ready: Vec<Cycle>,
    /// Last CAS of any bank group on this channel (tCCD_S spacing).
    last_cas_any: Option<Cycle>,
    /// Per-bank-group last CAS (tCCD_L applies between consecutive CAS *to
    /// the same group*, not only adjacent commands).
    last_cas_group: Vec<Option<Cycle>>,
    banks_per_rank: u32,
    banks_per_group: u32,
    rows_per_bank: u32,
}

impl ChannelLane {
    /// Builds the lane for `channel` of a `geo`-shaped system.
    pub fn new(channel: u32, geo: &DramGeometry, tp: &TimingParams) -> Self {
        let bpr = geo.banks_per_rank();
        let ranks = geo.ranks_per_channel;
        ChannelLane {
            channel,
            bank_base: channel * ranks * bpr,
            rank_base: channel * ranks,
            banks: vec![BankState::new(); (ranks * bpr) as usize],
            ranks: (0..ranks).map(|_| RankState::new(tp)).collect(),
            bus_free: 0,
            wtr_ready: vec![0; ranks as usize],
            last_cas_any: None,
            last_cas_group: vec![None; geo.bank_groups as usize],
            banks_per_rank: bpr,
            banks_per_group: geo.banks_per_group,
            rows_per_bank: geo.rows_per_bank(),
        }
    }

    /// The channel this lane models.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    #[inline]
    fn lb(&self, bank: BankId) -> usize {
        debug_assert!(
            bank.0 >= self.bank_base && bank.0 < self.bank_base + self.banks.len() as u32,
            "bank {bank} not on channel {}",
            self.channel
        );
        (bank.0 - self.bank_base) as usize
    }

    #[inline]
    fn lr(&self, rank: u32) -> usize {
        debug_assert!(
            rank >= self.rank_base && rank < self.rank_base + self.ranks.len() as u32,
            "rank {rank} not on channel {}",
            self.channel
        );
        (rank - self.rank_base) as usize
    }

    #[inline]
    fn group_of(&self, local_bank: usize) -> u32 {
        (local_bank as u32 % self.banks_per_rank) / self.banks_per_group
    }

    #[inline]
    fn rank_of(&self, local_bank: usize) -> usize {
        local_bank / self.banks_per_rank as usize
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: BankId) -> Option<RowId> {
        self.banks[self.lb(bank)].open_row()
    }

    /// Lifetime ACT count of `bank`.
    pub fn act_count(&self, bank: BankId) -> u64 {
        self.banks[self.lb(bank)].act_count()
    }

    /// Earliest cycle ≥ `now` at which `ACT bank` is legal.
    pub fn earliest_act(&self, bank: BankId, now: Cycle, tp: &TimingParams) -> Cycle {
        let lb = self.lb(bank);
        let b = &self.banks[lb];
        let r = &self.ranks[self.rank_of(lb)];
        now.max(b.earliest_act())
            .max(r.earliest_act(self.group_of(lb), tp))
    }

    /// Earliest cycle ≥ `now` at which `PRE bank` is legal.
    pub fn earliest_pre(&self, bank: BankId, now: Cycle) -> Cycle {
        now.max(self.banks[self.lb(bank)].earliest_pre())
    }

    /// Channel-level CAS spacing: tCCD_S after any CAS, tCCD_L after the
    /// last CAS to the same bank group (which need not be the most recent
    /// command — an A-B-A group pattern still owes tCCD_L between the As).
    fn ccd_ready(&self, bank_group: u32, tp: &TimingParams) -> Cycle {
        let short = self.last_cas_any.map_or(0, |t| t + tp.t_ccd_s);
        let long = self.last_cas_group[bank_group as usize].map_or(0, |t| t + tp.t_ccd_l);
        short.max(long)
    }

    fn note_cas(&mut self, bank_group: u32, t: Cycle) {
        self.last_cas_any = Some(t);
        self.last_cas_group[bank_group as usize] = Some(t);
    }

    /// Earliest cycle ≥ `now` at which `RD bank` is legal (bank CAS timing,
    /// channel data-bus availability, and the rank's write-to-read
    /// turnaround).
    pub fn earliest_rd(&self, bank: BankId, now: Cycle, tp: &TimingParams) -> Cycle {
        let lb = self.lb(bank);
        let b = &self.banks[lb];
        let cas = now
            .max(b.earliest_cas())
            .max(self.wtr_ready[self.rank_of(lb)])
            .max(self.ccd_ready(self.group_of(lb), tp));
        // Data burst [t+CL, t+CL+BL) must start after the bus frees.
        let bus = self.bus_free.saturating_sub(tp.t_cl);
        cas.max(bus)
    }

    /// Earliest cycle ≥ `now` at which `WR bank` is legal.
    pub fn earliest_wr(&self, bank: BankId, now: Cycle, tp: &TimingParams) -> Cycle {
        let lb = self.lb(bank);
        let b = &self.banks[lb];
        let cas = now
            .max(b.earliest_cas())
            .max(self.ccd_ready(self.group_of(lb), tp));
        let bus = self.bus_free.saturating_sub(tp.t_cwl);
        cas.max(bus)
    }

    /// The bank-intrinsic part of `bank`'s ACT readiness: the bank's own
    /// timers alone, no rank coupling. `earliest_act(bank, now) ==
    /// max(now, act_intrinsic(bank), act_floor(bank))` by construction.
    pub fn act_intrinsic(&self, bank: BankId) -> Cycle {
        self.banks[self.lb(bank)].earliest_act()
    }

    /// The cross-bank part of `bank`'s ACT readiness: its rank's
    /// tRRD/tFAW/refresh-recovery window for the bank's group. Mutated
    /// only by same-rank ACTs and REFs, and only ever *later* — which is
    /// what lets a scheduler memoize the intrinsic part and re-apply this
    /// floor in O(1).
    pub fn act_floor(&self, bank: BankId, tp: &TimingParams) -> Cycle {
        let lb = self.lb(bank);
        self.ranks[self.rank_of(lb)].earliest_act(self.group_of(lb), tp)
    }

    /// The bank-intrinsic part of `bank`'s CAS readiness (tRCD after its
    /// own ACT, write-recovery after its own CAS).
    pub fn cas_intrinsic(&self, bank: BankId) -> Cycle {
        self.banks[self.lb(bank)].earliest_cas()
    }

    /// The cross-bank part of `bank`'s best-case CAS readiness: the
    /// channel tCCD spacing, data-bus occupancy, and rank write-to-read
    /// turnaround, folded as `min(rd-side, wr-side)` so that
    /// `min(earliest_rd, earliest_wr)` at `now = 0` equals
    /// `max(cas_intrinsic, cas_floor)` — both directions share the bank
    /// term, so the min of the two maxes distributes. Mutated only by
    /// channel CAS traffic, and only ever later.
    pub fn cas_floor(&self, bank: BankId, tp: &TimingParams) -> Cycle {
        let lb = self.lb(bank);
        let ccd = self.ccd_ready(self.group_of(lb), tp);
        let rd = ccd
            .max(self.wtr_ready[self.rank_of(lb)])
            .max(self.bus_free.saturating_sub(tp.t_cl));
        let wr = ccd.max(self.bus_free.saturating_sub(tp.t_cwl));
        rd.min(wr)
    }

    /// The exact cycle `rank`'s next refresh becomes due:
    /// `refresh_due(rank, now)` is precisely `now >= refresh_deadline(rank)`.
    pub fn refresh_deadline(&self, rank: u32) -> Cycle {
        self.ranks[self.lr(rank)].next_refi()
    }

    /// Earliest cycle ≥ `now` at which a REF to `rank` may start (requires
    /// all banks of the rank precharged and past their ACT-ready times).
    pub fn earliest_ref(&self, rank: u32, now: Cycle) -> Cycle {
        let lr = self.lr(rank);
        let base = lr * self.banks_per_rank as usize;
        let mut t = now;
        for b in 0..self.banks_per_rank as usize {
            let bank = &self.banks[base + b];
            debug_assert_eq!(
                bank.phase(),
                BankPhase::Idle,
                "REF requires precharged banks"
            );
            t = t.max(bank.earliest_act());
        }
        t
    }

    /// Whether an auto-refresh is due on `rank` at `now`.
    pub fn refresh_due(&self, rank: u32, now: Cycle) -> bool {
        self.ranks[self.lr(rank)].refresh_due(now)
    }

    /// Whether `rank`'s refresh debt has hit the JEDEC postponement limit.
    pub fn refresh_urgent(&self, rank: u32, now: Cycle, tp: &TimingParams) -> bool {
        self.ranks[self.lr(rank)].must_refresh(now, tp)
    }

    /// Rows covered by one REF in each bank of a rank.
    pub fn rows_per_ref(&self, rank: u32, tp: &TimingParams) -> u32 {
        self.ranks[self.lr(rank)].rows_per_ref(self.rows_per_bank, tp)
    }

    /// The sequential refresh pointer of `rank` (row block refreshed by the
    /// *next* REF).
    pub fn refresh_row_ptr(&self, rank: u32) -> u32 {
        self.ranks[self.lr(rank)].refresh_row_ptr()
    }

    /// Total REF commands issued to `rank`.
    pub fn ref_count(&self, rank: u32) -> u64 {
        self.ranks[self.lr(rank)].ref_count()
    }

    /// Applies `cmd`'s state transition at cycle `t`.
    ///
    /// This is the mutation half of [`crate::device::DramDevice::issue`];
    /// the bookkeeping half (stats/history/trace) is recorded separately so
    /// the sharded coordinator can keep one canonically ordered stream.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on any timing or state violation.
    pub fn apply(&mut self, cmd: DramCommand, t: Cycle, tp: &TimingParams) -> IssueResult {
        match cmd {
            DramCommand::Act { bank, row } => {
                debug_assert!(row < self.rows_per_bank, "row out of range");
                debug_assert!(t >= self.earliest_act(bank, t, tp));
                let lb = self.lb(bank);
                let group = self.group_of(lb);
                let rank = self.rank_of(lb);
                self.banks[lb].on_act(t, row, tp);
                self.ranks[rank].on_act(t, group, tp);
                IssueResult::default()
            }
            DramCommand::Pre { bank } => {
                let lb = self.lb(bank);
                self.banks[lb].on_pre(t, tp);
                IssueResult::default()
            }
            DramCommand::Rd { bank } => {
                let lb = self.lb(bank);
                let done = self.banks[lb].on_rd(t, tp);
                self.bus_free = done;
                self.note_cas(self.group_of(lb), t);
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Wr { bank } => {
                let lb = self.lb(bank);
                let rank = self.rank_of(lb);
                let done = self.banks[lb].on_wr(t, tp);
                let data_end = t + tp.t_cwl + tp.t_bl;
                self.bus_free = data_end;
                self.note_cas(self.group_of(lb), t);
                // Write-to-read turnaround: internal write completion must
                // precede the next rank-internal read (tWTR_L conservative).
                self.wtr_ready[rank] = self.wtr_ready[rank].max(data_end + tp.t_wtr_l);
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Ref { rank } => {
                let lr = self.lr(rank);
                let (done, _ptr) = self.ranks[lr].on_refresh(t, self.rows_per_bank, tp);
                let base = lr * self.banks_per_rank as usize;
                for b in 0..self.banks_per_rank as usize {
                    self.banks[base + b].block_until(done);
                }
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Rfm { bank } => {
                let done = t + tp.t_rfm;
                let lb = self.lb(bank);
                self.banks[lb].block_until(done);
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Rfmab { rank } => {
                // ABO recovery, rank scope: like REF, all banks must be
                // precharged and the whole rank blocks for tRFM — but no
                // tREFI bookkeeping moves (recovery is extra work, not a
                // scheduled refresh).
                let done = t + tp.t_rfm;
                let lr = self.lr(rank);
                let base = lr * self.banks_per_rank as usize;
                for b in 0..self.banks_per_rank as usize {
                    debug_assert_eq!(
                        self.banks[base + b].phase(),
                        BankPhase::Idle,
                        "RFMAB requires precharged banks"
                    );
                    self.banks[base + b].block_until(done);
                }
                self.ranks[lr].block_until(done);
                IssueResult {
                    done_at: Some(done),
                }
            }
            DramCommand::Rfmsb { bank } => {
                // ABO recovery, bank scope: only the alerting bank blocks
                // (PRACtical's recovery isolation).
                let done = t + tp.t_rfm;
                let lb = self.lb(bank);
                debug_assert_eq!(
                    self.banks[lb].phase(),
                    BankPhase::Idle,
                    "RFMSB requires a precharged bank"
                );
                self.banks[lb].block_until(done);
                IssueResult {
                    done_at: Some(done),
                }
            }
        }
    }
}
