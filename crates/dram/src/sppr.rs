//! Soft Post-Package Repair (sPPR) — the JEDEC runtime row-replacement
//! mechanism (paper §VIII).
//!
//! Since DDR4, JEDEC defines sPPR: the host can remap a faulty row address
//! onto a spare row at runtime, per bank group, with *unchanged* tRCD — the
//! paper's evidence that DRAM already contains a low-latency address
//! relocation path SHADOW can reuse (and that SHADOW's remapping machinery
//! could serve an enhanced sPPR in return).
//!
//! This module models the resource as the standard exposes it: a
//! small number of spare rows per bank group, a repair operation that
//! installs `faulty → spare` entries, and translation on the ACT path. The
//! DDR5 generation increased the per-bank-group budget (§VIII cites the
//! Micron DDR5 feature summary, reference 70), which
//! [`SpprResources::ddr5`] reflects.

use crate::geometry::RowId;
use std::collections::HashMap;

/// Error returned when a repair cannot be installed, or when the
/// resource itself cannot be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairError {
    /// Every spare row of the bank group is already consumed.
    OutOfSpares,
    /// The row already has a repair entry (JEDEC: one repair per address).
    AlreadyRepaired,
    /// A bank group cannot be built with zero spare rows.
    ZeroSpares,
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::OutOfSpares => write!(f, "no spare rows left in bank group"),
            RepairError::AlreadyRepaired => write!(f, "row already repaired"),
            RepairError::ZeroSpares => write!(f, "sPPR needs at least one spare row"),
        }
    }
}

impl std::error::Error for RepairError {}

/// sPPR state for one bank group.
#[derive(Debug, Clone)]
pub struct SpprResources {
    /// Installed repairs: faulty row → spare row.
    repairs: HashMap<RowId, RowId>,
    /// Spare rows not yet consumed (device addresses past the ordinary
    /// rows, as with SHADOW's extra rows).
    free_spares: Vec<RowId>,
    capacity: usize,
}

impl SpprResources {
    /// Creates a bank group with `spares` spare rows starting at device
    /// address `spare_base`.
    ///
    /// # Panics
    ///
    /// Panics if `spares == 0`; see [`SpprResources::try_new`] for the
    /// non-panicking form.
    pub fn new(spare_base: RowId, spares: usize) -> Self {
        Self::try_new(spare_base, spares).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SpprResources::new`]: rejects a zero spare
    /// budget with [`RepairError::ZeroSpares`] instead of panicking, for
    /// callers wiring user-supplied configuration into the model.
    pub fn try_new(spare_base: RowId, spares: usize) -> Result<Self, RepairError> {
        if spares == 0 {
            return Err(RepairError::ZeroSpares);
        }
        Ok(SpprResources {
            repairs: HashMap::new(),
            free_spares: (0..spares as u32).rev().map(|i| spare_base + i).collect(),
            capacity: spares,
        })
    }

    /// DDR4-generation budget: one sPPR resource per bank group.
    pub fn ddr4(spare_base: RowId) -> Self {
        Self::new(spare_base, 1)
    }

    /// DDR5-generation budget: the increased per-bank-group allocation
    /// (§VIII: "the number of possible sPPR replacements per bank-group
    /// has continually increased").
    pub fn ddr5(spare_base: RowId) -> Self {
        Self::new(spare_base, 4)
    }

    /// Installs a repair for `faulty`.
    ///
    /// # Errors
    ///
    /// [`RepairError::OutOfSpares`] when the budget is exhausted,
    /// [`RepairError::AlreadyRepaired`] on a duplicate target.
    pub fn repair(&mut self, faulty: RowId) -> Result<RowId, RepairError> {
        if self.repairs.contains_key(&faulty) {
            return Err(RepairError::AlreadyRepaired);
        }
        let spare = self.free_spares.pop().ok_or(RepairError::OutOfSpares)?;
        self.repairs.insert(faulty, spare);
        Ok(spare)
    }

    /// Reverts a repair (soft PPR is volatile: cleared at power cycle; an
    /// explicit undo models that).
    ///
    /// Returns the freed spare, or `None` if `faulty` had no repair.
    pub fn undo(&mut self, faulty: RowId) -> Option<RowId> {
        let spare = self.repairs.remove(&faulty)?;
        self.free_spares.push(spare);
        Some(spare)
    }

    /// Translates a row through the repair table (the zero-added-tRCD
    /// relocation path §VIII highlights).
    pub fn translate(&self, row: RowId) -> RowId {
        self.repairs.get(&row).copied().unwrap_or(row)
    }

    /// Repairs still available.
    pub fn remaining(&self) -> usize {
        self.free_spares.len()
    }

    /// Repairs installed.
    pub fn used(&self) -> usize {
        self.capacity - self.free_spares.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_redirects_translation() {
        let mut s = SpprResources::ddr5(1000);
        let spare = s.repair(42).unwrap();
        assert!(spare >= 1000);
        assert_eq!(s.translate(42), spare);
        assert_eq!(s.translate(43), 43);
    }

    #[test]
    fn budget_enforced() {
        let mut s = SpprResources::ddr4(1000);
        s.repair(1).unwrap();
        assert_eq!(s.repair(2), Err(RepairError::OutOfSpares));
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.used(), 1);
    }

    #[test]
    fn ddr5_budget_larger_than_ddr4() {
        let mut d4 = SpprResources::ddr4(1000);
        let mut d5 = SpprResources::ddr5(1000);
        let count = |s: &mut SpprResources| {
            let mut n = 0;
            while s.repair(n as u32 + 1).is_ok() {
                n += 1;
            }
            n
        };
        assert!(count(&mut d5) > count(&mut d4));
    }

    #[test]
    fn duplicate_repair_rejected() {
        let mut s = SpprResources::ddr5(1000);
        s.repair(7).unwrap();
        assert_eq!(s.repair(7), Err(RepairError::AlreadyRepaired));
    }

    #[test]
    fn undo_frees_the_spare() {
        let mut s = SpprResources::ddr4(1000);
        let spare = s.repair(9).unwrap();
        assert_eq!(s.undo(9), Some(spare));
        assert_eq!(s.translate(9), 9);
        // The spare is reusable.
        assert!(s.repair(11).is_ok());
    }

    #[test]
    fn undo_of_unrepaired_is_none() {
        let mut s = SpprResources::ddr4(1000);
        assert_eq!(s.undo(5), None);
    }

    #[test]
    fn spares_are_distinct() {
        let mut s = SpprResources::ddr5(2000);
        let mut seen = std::collections::HashSet::new();
        for faulty in 1..=4u32 {
            assert!(seen.insert(s.repair(faulty).unwrap()), "spare reused");
        }
    }

    #[test]
    fn error_displays() {
        assert!(RepairError::OutOfSpares.to_string().contains("spare"));
    }

    #[test]
    fn exhaustion_is_stable_and_preserves_installed_repairs() {
        // Drain the DDR5 budget completely, then keep asking: every further
        // request must fail with OutOfSpares without disturbing the table.
        let mut s = SpprResources::ddr5(4096);
        let mut installed = Vec::new();
        for faulty in 10..14u32 {
            installed.push((faulty, s.repair(faulty).unwrap()));
        }
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.used(), 4);
        for faulty in 100..105u32 {
            assert_eq!(s.repair(faulty), Err(RepairError::OutOfSpares));
        }
        // Existing repairs still translate; unrepaired rows pass through.
        for (faulty, spare) in &installed {
            assert_eq!(s.translate(*faulty), *spare);
        }
        assert_eq!(s.translate(100), 100, "failed repair must not half-install");
        assert_eq!(s.used(), 4, "failed requests must not consume budget");
    }

    #[test]
    fn undo_recovers_from_exhaustion() {
        let mut s = SpprResources::ddr4(500);
        s.repair(3).unwrap();
        assert_eq!(s.repair(4), Err(RepairError::OutOfSpares));
        let spare = s.undo(3).unwrap();
        assert_eq!(s.remaining(), 1);
        // The freed spare serves the previously rejected row.
        assert_eq!(s.repair(4), Ok(spare));
        assert_eq!(s.translate(4), spare);
        assert_eq!(s.translate(3), 3);
    }

    #[test]
    fn duplicate_check_precedes_exhaustion_check() {
        // An already-repaired row reports AlreadyRepaired even when the
        // budget is gone — the caller needs to tell "can't" from "did".
        let mut s = SpprResources::ddr4(500);
        s.repair(8).unwrap();
        assert_eq!(s.repair(8), Err(RepairError::AlreadyRepaired));
    }

    #[test]
    #[should_panic]
    fn zero_spares_rejected() {
        let _ = SpprResources::new(100, 0);
    }

    #[test]
    fn try_new_reports_zero_spares_as_typed_error() {
        assert_eq!(
            SpprResources::try_new(100, 0).err(),
            Some(RepairError::ZeroSpares)
        );
        let s = SpprResources::try_new(100, 2).expect("valid budget");
        assert_eq!(s.remaining(), 2);
    }
}
