//! Rank-level timing constraints: tRRD, tFAW, and the auto-refresh engine.
//!
//! Activations to different banks of the same rank are rate-limited by the
//! row-to-row delay (tRRD, with a longer value inside a bank group) and by
//! the four-activate window (tFAW). Auto-refresh (REF) blocks the whole rank
//! for tRFC and must fire on average once per tREFI so every row is
//! refreshed within tREFW.

use crate::timing::TimingParams;
use shadow_sim::time::Cycle;

/// Timing state of one rank.
#[derive(Debug, Clone)]
pub struct RankState {
    /// Cycles of the last four ACTs (for tFAW), most recent last.
    act_window: [Cycle; 4],
    /// Total ACTs recorded (tFAW only applies once four exist).
    acts_seen: u64,
    /// Earliest next-ACT cycle due to tRRD_S (short value, any bank pair).
    rrd_ready: Cycle,
    /// Last ACT cycle per bank group (tRRD_L applies between consecutive
    /// ACTs *to the same group*, not only adjacent commands — an
    /// A-B-A group pattern must still keep the two A ACTs tRRD_L apart).
    group_act: Vec<Option<Cycle>>,
    /// Earliest cycle the next REF may start / rank unblocked after REF.
    refresh_ready: Cycle,
    /// Deadline-tracking: next scheduled tREFI tick.
    next_refi: Cycle,
    /// REF commands issued.
    refs: u64,
    /// Sequential refresh pointer (which row block the next REF covers).
    refresh_row_ptr: u32,
}

impl RankState {
    /// A fresh rank with its first refresh due at one tREFI.
    pub fn new(tp: &TimingParams) -> Self {
        RankState {
            act_window: [0; 4],
            acts_seen: 0,
            rrd_ready: 0,
            group_act: Vec::new(),
            refresh_ready: 0,
            next_refi: tp.t_refi,
            refs: 0,
            refresh_row_ptr: 0,
        }
    }

    /// Earliest cycle an ACT to `bank_group` satisfies tRRD and tFAW.
    pub fn earliest_act(&self, bank_group: u32, tp: &TimingParams) -> Cycle {
        // tFAW: the 4th-previous ACT must be at least tFAW ago (only once
        // four ACTs have actually happened).
        let faw_ready = if self.acts_seen >= 4 {
            self.act_window[0] + tp.t_faw
        } else {
            0
        };
        // tRRD: the short value since any ACT, the long value since the
        // last ACT to this same bank group.
        let rrd_l = match self.group_act.get(bank_group as usize).copied().flatten() {
            Some(last) => last + tp.t_rrd_l,
            None => 0,
        };
        faw_ready
            .max(self.rrd_ready)
            .max(rrd_l)
            .max(self.refresh_ready)
    }

    /// Records an ACT at cycle `t` to `bank_group`.
    pub fn on_act(&mut self, t: Cycle, bank_group: u32, tp: &TimingParams) {
        debug_assert!(
            t >= self.earliest_act(bank_group, tp),
            "rank ACT timing violation"
        );
        self.act_window.rotate_left(1);
        self.act_window[3] = t;
        self.acts_seen += 1;
        self.rrd_ready = t + tp.t_rrd_s;
        let g = bank_group as usize;
        if self.group_act.len() <= g {
            self.group_act.resize(g + 1, None);
        }
        self.group_act[g] = Some(t);
    }

    /// Whether an auto-refresh is due at cycle `now`.
    pub fn refresh_due(&self, now: Cycle) -> bool {
        now >= self.next_refi
    }

    /// The exact cycle at which the next refresh becomes due:
    /// `refresh_due(now)` is precisely `now >= next_refi()`. Moves only
    /// when a REF is issued.
    pub fn next_refi(&self) -> Cycle {
        self.next_refi
    }

    /// How many tREFI periods the rank is behind (postponed refreshes).
    pub fn refresh_debt(&self, now: Cycle, tp: &TimingParams) -> u64 {
        if now < self.next_refi {
            0
        } else {
            1 + (now - self.next_refi) / tp.t_refi
        }
    }

    /// Maximum REF commands JEDEC allows a controller to postpone.
    pub const MAX_POSTPONE: u64 = 8;

    /// Whether the refresh debt has reached the JEDEC postponement limit —
    /// the controller *must* drain and refresh now.
    pub fn must_refresh(&self, now: Cycle, tp: &TimingParams) -> bool {
        self.refresh_debt(now, tp) >= Self::MAX_POSTPONE
    }

    /// Records a REF issued at cycle `t`; returns the cycle the rank is
    /// usable again (`t + tRFC`) and the row-block pointer this REF covers.
    pub fn on_refresh(&mut self, t: Cycle, rows_per_bank: u32, tp: &TimingParams) -> (Cycle, u32) {
        let done = t + tp.t_rfc;
        self.refresh_ready = done;
        self.next_refi += tp.t_refi;
        self.refs += 1;
        let ptr = self.refresh_row_ptr;
        // Each REF covers rows_per_bank / refs_per_window rows in every bank.
        let rows_per_ref = (rows_per_bank as u64 / tp.refs_per_window().max(1)).max(1) as u32;
        self.refresh_row_ptr = (self.refresh_row_ptr + rows_per_ref) % rows_per_bank;
        (done, ptr)
    }

    /// Rows covered by one REF command.
    pub fn rows_per_ref(&self, rows_per_bank: u32, tp: &TimingParams) -> u32 {
        (rows_per_bank as u64 / tp.refs_per_window().max(1)).max(1) as u32
    }

    /// Blocks all activity in the rank until `until` (used by RFM-all-bank
    /// style operations or emulated extra refreshes).
    pub fn block_until(&mut self, until: Cycle) {
        self.refresh_ready = self.refresh_ready.max(until);
    }

    /// Total REF commands issued.
    pub fn ref_count(&self) -> u64 {
        self.refs
    }

    /// Current sequential refresh pointer.
    pub fn refresh_row_ptr(&self) -> u32 {
        self.refresh_row_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp() -> TimingParams {
        TimingParams::tiny()
    }

    #[test]
    fn trrd_spacing_enforced() {
        let t = tp();
        let mut r = RankState::new(&t);
        r.on_act(0, 0, &t);
        // Different bank group: short tRRD.
        assert_eq!(r.earliest_act(1, &t), t.t_rrd_s);
        // Same bank group: long tRRD.
        assert_eq!(r.earliest_act(0, &t), t.t_rrd_l);
    }

    #[test]
    fn tfaw_limits_burst_of_activates() {
        let t = tp();
        let mut r = RankState::new(&t);
        let mut now = 0;
        for i in 0..4 {
            now = r.earliest_act(i % 2, &t).max(now);
            r.on_act(now, i % 2, &t);
            now += 1;
        }
        // The 5th ACT must wait until first-of-window + tFAW.
        let fifth = r.earliest_act(0, &t);
        assert!(fifth >= r.act_window[0] + t.t_faw);
    }

    #[test]
    fn trrd_l_applies_across_interleaved_groups() {
        // A-B-A: the second group-0 ACT must sit tRRD_L after the first
        // group-0 ACT even though a group-1 ACT came between.
        let t = tp();
        let mut r = RankState::new(&t);
        r.on_act(0, 0, &t);
        let tb = r.earliest_act(1, &t);
        r.on_act(tb, 1, &t);
        assert!(
            r.earliest_act(0, &t) >= t.t_rrd_l,
            "tRRD_L lost across groups"
        );
    }

    #[test]
    fn refresh_due_and_debt() {
        let t = tp();
        let r = RankState::new(&t);
        assert!(!r.refresh_due(t.t_refi - 1));
        assert!(r.refresh_due(t.t_refi));
        assert_eq!(r.refresh_debt(t.t_refi * 3, &t), 3);
        assert_eq!(r.refresh_debt(0, &t), 0);
    }

    #[test]
    fn postponement_limit() {
        let t = tp();
        let r = RankState::new(&t);
        assert!(!r.must_refresh(t.t_refi * 7, &t));
        assert!(r.must_refresh(t.t_refi * RankState::MAX_POSTPONE, &t));
    }

    #[test]
    fn catching_up_clears_urgency() {
        let t = tp();
        let mut r = RankState::new(&t);
        let now = t.t_refi * RankState::MAX_POSTPONE;
        assert!(r.must_refresh(now, &t));
        for i in 0..RankState::MAX_POSTPONE {
            r.on_refresh(now + i * t.t_rfc, 64, &t);
        }
        assert!(!r.must_refresh(now + 8 * t.t_rfc, &t));
    }

    #[test]
    fn refresh_blocks_rank_and_advances_pointer() {
        let t = tp();
        let mut r = RankState::new(&t);
        let rows_per_bank = 64;
        let (done, ptr0) = r.on_refresh(t.t_refi, rows_per_bank, &t);
        assert_eq!(done, t.t_refi + t.t_rfc);
        assert_eq!(ptr0, 0);
        assert_eq!(r.earliest_act(0, &t), done);
        assert_eq!(r.ref_count(), 1);
        let (_, ptr1) = r.on_refresh(2 * t.t_refi, rows_per_bank, &t);
        assert!(ptr1 > 0, "pointer should advance");
    }

    #[test]
    fn refresh_pointer_wraps() {
        let t = tp();
        let mut r = RankState::new(&t);
        let rows_per_bank = 8;
        let mut now = t.t_refi;
        for _ in 0..1000 {
            let (_, ptr) = r.on_refresh(now, rows_per_bank, &t);
            assert!(ptr < rows_per_bank);
            now += t.t_refi;
        }
    }

    #[test]
    fn block_until_delays_acts() {
        let t = tp();
        let mut r = RankState::new(&t);
        r.block_until(500);
        assert_eq!(r.earliest_act(0, &t), 500);
    }
}
