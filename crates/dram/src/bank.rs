//! Per-bank timing state machine.
//!
//! Each bank tracks its open row and the earliest cycle at which each
//! command class may legally be issued, in the style of cycle-level DRAM
//! simulators: issuing a command advances the ready-times of the commands it
//! constrains (tRCD, tRAS, tRP, tRC, tRTP, write recovery).
//!
//! Rank-level constraints (tRRD, tFAW, refresh) live in [`crate::rank`];
//! channel-level data-bus constraints (tCCD, burst occupancy) are enforced by
//! the device.

use crate::geometry::RowId;
use crate::timing::TimingParams;
use shadow_sim::time::Cycle;

/// Whether the bank has a row open in its row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankPhase {
    /// All bitlines precharged; ACT is legal.
    Idle,
    /// `row` is latched in the row buffer; RD/WR/PRE are legal.
    Active(RowId),
}

/// Timing state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankState {
    phase: BankPhase,
    /// Earliest cycle for the next ACT.
    act_ready: Cycle,
    /// Earliest cycle for the next PRE.
    pre_ready: Cycle,
    /// Earliest cycle for the next RD/WR (column command).
    cas_ready: Cycle,
    /// Total ACTs issued to this bank (power model input).
    acts: u64,
}

impl Default for BankState {
    fn default() -> Self {
        Self::new()
    }
}

impl BankState {
    /// A freshly precharged bank, ready at cycle 0.
    pub fn new() -> Self {
        BankState {
            phase: BankPhase::Idle,
            act_ready: 0,
            pre_ready: 0,
            cas_ready: 0,
            acts: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> BankPhase {
        self.phase
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        match self.phase {
            BankPhase::Active(r) => Some(r),
            BankPhase::Idle => None,
        }
    }

    /// Lifetime ACT count.
    pub fn act_count(&self) -> u64 {
        self.acts
    }

    /// Earliest legal ACT cycle (bank-local constraints only).
    pub fn earliest_act(&self) -> Cycle {
        self.act_ready
    }

    /// Earliest legal PRE cycle.
    pub fn earliest_pre(&self) -> Cycle {
        self.pre_ready
    }

    /// Earliest legal RD/WR cycle.
    pub fn earliest_cas(&self) -> Cycle {
        self.cas_ready
    }

    /// Issues an ACT at cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the bank is not idle or `t` violates timing.
    pub fn on_act(&mut self, t: Cycle, row: RowId, tp: &TimingParams) {
        debug_assert_eq!(self.phase, BankPhase::Idle, "ACT to non-idle bank");
        debug_assert!(
            t >= self.act_ready,
            "ACT at {t} before ready {}",
            self.act_ready
        );
        self.phase = BankPhase::Active(row);
        self.acts += 1;
        self.cas_ready = t + tp.t_rcd_effective();
        // Per the paper's methodology (§VII-C), only tRCD is extended by
        // the remapping-row fetch; tRAS/tRC are unchanged MC-visible
        // parameters (restoration overlaps the shortened remaining window).
        self.pre_ready = self.pre_ready.max(t + tp.t_ras);
        self.act_ready = self.act_ready.max(t + tp.t_rc);
    }

    /// Issues a RD at cycle `t`. Returns the cycle the data burst completes.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if no row is open or `t` violates timing.
    pub fn on_rd(&mut self, t: Cycle, tp: &TimingParams) -> Cycle {
        debug_assert!(
            matches!(self.phase, BankPhase::Active(_)),
            "RD with no open row"
        );
        debug_assert!(
            t >= self.cas_ready,
            "RD at {t} before ready {}",
            self.cas_ready
        );
        self.pre_ready = self.pre_ready.max(t + tp.t_rtp);
        self.cas_ready = self.cas_ready.max(t + tp.t_ccd_l);
        t + tp.t_cl + tp.t_bl
    }

    /// Issues a WR at cycle `t`. Returns the cycle write recovery completes.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if no row is open or `t` violates timing.
    pub fn on_wr(&mut self, t: Cycle, tp: &TimingParams) -> Cycle {
        debug_assert!(
            matches!(self.phase, BankPhase::Active(_)),
            "WR with no open row"
        );
        debug_assert!(
            t >= self.cas_ready,
            "WR at {t} before ready {}",
            self.cas_ready
        );
        let recovery = t + tp.t_cwl + tp.t_bl + tp.t_wr;
        self.pre_ready = self.pre_ready.max(recovery);
        self.cas_ready = self.cas_ready.max(t + tp.t_ccd_l);
        recovery
    }

    /// Issues a PRE at cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `t` violates tRAS / recovery constraints.
    pub fn on_pre(&mut self, t: Cycle, tp: &TimingParams) {
        debug_assert!(
            t >= self.pre_ready,
            "PRE at {t} before ready {}",
            self.pre_ready
        );
        self.phase = BankPhase::Idle;
        self.act_ready = self.act_ready.max(t + tp.t_rp);
    }

    /// Blocks the bank until cycle `until` (REF / RFM occupancy).
    ///
    /// The bank must be idle; refresh-class commands require precharged
    /// banks.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the bank has an open row.
    pub fn block_until(&mut self, until: Cycle) {
        debug_assert_eq!(
            self.phase,
            BankPhase::Idle,
            "refresh-class command to active bank"
        );
        self.act_ready = self.act_ready.max(until);
        self.cas_ready = self.cas_ready.max(until);
        self.pre_ready = self.pre_ready.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp() -> TimingParams {
        TimingParams::tiny()
    }

    #[test]
    fn fresh_bank_is_idle_and_ready() {
        let b = BankState::new();
        assert_eq!(b.phase(), BankPhase::Idle);
        assert_eq!(b.earliest_act(), 0);
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn act_opens_row_and_sets_trcd() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 7, &t);
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.earliest_cas(), t.t_rcd); // RD must wait tRCD
        assert_eq!(b.earliest_pre(), t.t_ras); // PRE must wait tRAS
        assert_eq!(b.earliest_act(), t.t_rc); // next ACT waits tRC
        assert_eq!(b.act_count(), 1);
    }

    #[test]
    fn trcd_extra_extends_only_cas() {
        let mut t = tp();
        t.t_rcd_extra = 2;
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        assert_eq!(b.earliest_cas(), t.t_rcd + 2);
        // tRAS / tRC are MC-visible constants, unchanged by SHADOW.
        assert_eq!(b.earliest_pre(), t.t_ras);
        assert_eq!(b.earliest_act(), t.t_rc);
    }

    #[test]
    fn read_then_precharge_respects_trtp() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        let done = b.on_rd(t.t_rcd, &t);
        assert_eq!(done, t.t_rcd + t.t_cl + t.t_bl);
        assert!(b.earliest_pre() >= t.t_rcd + t.t_rtp);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        let rec = b.on_wr(t.t_rcd, &t);
        assert_eq!(rec, t.t_rcd + t.t_cwl + t.t_bl + t.t_wr);
        assert_eq!(b.earliest_pre(), rec);
    }

    #[test]
    fn pre_closes_and_sets_trp() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        b.on_pre(t.t_ras, &t);
        assert_eq!(b.phase(), BankPhase::Idle);
        // tRC from ACT dominates or tRP from PRE, whichever later.
        assert_eq!(b.earliest_act(), (t.t_ras + t.t_rp).max(t.t_rc));
    }

    #[test]
    fn act_pre_act_cycle_time() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        b.on_pre(t.t_ras, &t);
        let next = b.earliest_act();
        b.on_act(next, 2, &t);
        assert_eq!(b.open_row(), Some(2));
        assert_eq!(b.act_count(), 2);
    }

    #[test]
    fn consecutive_reads_spaced_by_tccd() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        b.on_rd(t.t_rcd, &t);
        assert_eq!(b.earliest_cas(), t.t_rcd + t.t_ccd_l);
    }

    #[test]
    fn block_until_delays_everything() {
        let t = tp();
        let mut b = BankState::new();
        b.block_until(100);
        assert_eq!(b.earliest_act(), 100);
        b.on_act(100, 3, &t);
        assert_eq!(b.open_row(), Some(3));
    }

    #[test]
    #[should_panic]
    fn double_act_panics_in_debug() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        b.on_act(t.t_rc, 2, &t); // still active: must PRE first
    }

    #[test]
    #[should_panic]
    fn early_read_panics_in_debug() {
        let t = tp();
        let mut b = BankState::new();
        b.on_act(0, 1, &t);
        b.on_rd(1, &t); // before tRCD
    }

    #[test]
    #[should_panic]
    fn read_without_open_row_panics() {
        let t = tp();
        let mut b = BankState::new();
        b.on_rd(10, &t);
    }
}
