//! The DDR5 Refresh-Management (RFM) interface (paper §II-A, Table I).
//!
//! JEDEC DDR5 places a small per-bank *Rolling Accumulated ACT* (RAA)
//! counter in the memory controller. Every ACT increments the counter of its
//! bank; when a counter reaches the RAA Initial Management Threshold
//! (RAAIMT), the MC must issue an RFM command to that bank, which grants the
//! device tRFM of slack for in-DRAM mitigation and decrements the counter by
//! RAAIMT. REF commands also decrement RAA counters (the refresh itself
//! performs management work).
//!
//! Both SHADOW and the RFM-based baselines (PARFM, Mithril) are driven by
//! this machinery; only what the device *does* during tRFM differs.

use crate::geometry::BankId;

/// Per-bank RAA counters with a shared RAAIMT.
#[derive(Debug, Clone)]
pub struct RaaCounters {
    counts: Vec<u32>,
    raaimt: u32,
    /// RAA decrement per REF command (JEDEC: RAAIMT × refresh factor; we use
    /// RAAIMT, the common configuration).
    ref_decrement: u32,
    rfms_required: u64,
}

impl RaaCounters {
    /// Creates counters for `banks` banks with threshold `raaimt`.
    ///
    /// # Panics
    ///
    /// Panics if `raaimt == 0` or `banks == 0`.
    pub fn new(banks: usize, raaimt: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(raaimt > 0, "RAAIMT must be positive");
        RaaCounters {
            counts: vec![0; banks],
            raaimt,
            ref_decrement: raaimt,
            rfms_required: 0,
        }
    }

    /// The configured RAAIMT.
    pub fn raaimt(&self) -> u32 {
        self.raaimt
    }

    /// Records an ACT to `bank`; returns `true` if the bank now requires an
    /// RFM (counter reached RAAIMT).
    pub fn on_act(&mut self, bank: BankId) -> bool {
        let c = &mut self.counts[bank.0 as usize];
        *c += 1;
        if *c >= self.raaimt {
            self.rfms_required += 1;
            true
        } else {
            false
        }
    }

    /// Records an RFM issued to `bank` (counter drops by RAAIMT).
    pub fn on_rfm(&mut self, bank: BankId) {
        let c = &mut self.counts[bank.0 as usize];
        *c = c.saturating_sub(self.raaimt);
    }

    /// Records a REF covering `bank` (counter drops by the REF credit).
    pub fn on_ref(&mut self, bank: BankId) {
        let c = &mut self.counts[bank.0 as usize];
        *c = c.saturating_sub(self.ref_decrement);
    }

    /// Whether `bank` currently requires an RFM.
    pub fn needs_rfm(&self, bank: BankId) -> bool {
        self.counts[bank.0 as usize] >= self.raaimt
    }

    /// Current RAA count of `bank`.
    pub fn count(&self, bank: BankId) -> u32 {
        self.counts[bank.0 as usize]
    }

    /// Total times any counter crossed the threshold (RFM demand).
    pub fn rfms_required(&self) -> u64 {
        self.rfms_required
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_triggers_rfm() {
        let mut raa = RaaCounters::new(2, 4);
        let b = BankId(0);
        for i in 1..4 {
            assert!(!raa.on_act(b), "premature trigger at {i}");
        }
        assert!(raa.on_act(b), "no trigger at RAAIMT");
        assert!(raa.needs_rfm(b));
        assert_eq!(raa.rfms_required(), 1);
    }

    #[test]
    fn rfm_decrements_by_raaimt() {
        let mut raa = RaaCounters::new(1, 4);
        let b = BankId(0);
        for _ in 0..6 {
            raa.on_act(b);
        }
        assert_eq!(raa.count(b), 6);
        raa.on_rfm(b);
        assert_eq!(raa.count(b), 2);
        assert!(!raa.needs_rfm(b));
    }

    #[test]
    fn ref_also_credits() {
        let mut raa = RaaCounters::new(1, 4);
        let b = BankId(0);
        for _ in 0..3 {
            raa.on_act(b);
        }
        raa.on_ref(b);
        assert_eq!(raa.count(b), 0);
    }

    #[test]
    fn counters_are_per_bank() {
        let mut raa = RaaCounters::new(2, 2);
        raa.on_act(BankId(0));
        raa.on_act(BankId(0));
        assert!(raa.needs_rfm(BankId(0)));
        assert!(!raa.needs_rfm(BankId(1)));
    }

    #[test]
    fn saturating_never_underflows() {
        let mut raa = RaaCounters::new(1, 8);
        raa.on_rfm(BankId(0));
        raa.on_ref(BankId(0));
        assert_eq!(raa.count(BankId(0)), 0);
    }

    #[test]
    #[should_panic]
    fn zero_raaimt_panics() {
        let _ = RaaCounters::new(1, 0);
    }

    #[test]
    fn raaimt_boundary_is_inclusive() {
        // JEDEC: the RFM obligation arises when RAA *reaches* RAAIMT, not
        // when it exceeds it. Exercise the exact boundary from both sides.
        let mut raa = RaaCounters::new(1, 1);
        let b = BankId(0);
        assert!(!raa.needs_rfm(b), "fresh counter must not demand an RFM");
        assert!(raa.on_act(b), "RAAIMT=1 means every ACT triggers");
        assert_eq!(raa.count(b), raa.raaimt());
        raa.on_rfm(b);
        assert_eq!(raa.count(b), 0);
        assert!(!raa.needs_rfm(b));
    }

    #[test]
    fn acts_above_threshold_keep_demanding() {
        // Once at/above RAAIMT, every further ACT is a fresh demand until
        // an RFM (or REF) brings the counter back down.
        let mut raa = RaaCounters::new(1, 3);
        let b = BankId(0);
        for _ in 0..5 {
            raa.on_act(b);
        }
        assert_eq!(raa.count(b), 5);
        assert_eq!(raa.rfms_required(), 3, "ACTs 3, 4, 5 each crossed");
        raa.on_rfm(b);
        assert_eq!(raa.count(b), 2);
        assert!(!raa.needs_rfm(b));
    }

    #[test]
    fn ref_decrement_saturates_partial_counts() {
        // A REF credit larger than the current count must floor at zero,
        // never wrap: a wrapped counter would suppress RFMs for ~2^32 ACTs.
        let mut raa = RaaCounters::new(1, 100);
        let b = BankId(0);
        for _ in 0..37 {
            raa.on_act(b);
        }
        assert_eq!(raa.count(b), 37);
        raa.on_ref(b); // credit = RAAIMT = 100 > 37
        assert_eq!(raa.count(b), 0);
        raa.on_ref(b); // already zero: stays zero
        assert_eq!(raa.count(b), 0);
        assert_eq!(raa.rfms_required(), 0);
    }

    #[test]
    fn rfms_required_drains_demand_across_cycles() {
        // Demand accounting: rfms_required is monotone (total threshold
        // crossings), while needs_rfm reflects the *current* obligation.
        // Drive three full charge→RFM cycles and check both views.
        let mut raa = RaaCounters::new(2, 4);
        let b = BankId(1);
        for cycle in 1..=3u64 {
            for i in 0..4 {
                let fired = raa.on_act(b);
                assert_eq!(fired, i == 3, "cycle {cycle}: only the 4th ACT crosses");
            }
            assert!(raa.needs_rfm(b));
            assert_eq!(raa.rfms_required(), cycle);
            raa.on_rfm(b);
            assert!(!raa.needs_rfm(b), "RFM clears the obligation");
            assert_eq!(raa.count(b), 0);
            // The historical demand total is not rewound by servicing it.
            assert_eq!(raa.rfms_required(), cycle);
        }
        // The untouched bank was never part of any of it.
        assert_eq!(raa.count(BankId(0)), 0);
    }
}
