//! # shadow-dram
//!
//! A cycle-level DRAM device model built from scratch for the SHADOW
//! reproduction: the substrate on which every performance experiment in the
//! paper (Figures 8–12) runs.
//!
//! The model covers exactly what the paper's evaluation exercises:
//!
//! * **Geometry** ([`geometry`]) — channel / rank / bank-group / bank /
//!   subarray / row / column hierarchy (paper Fig. 1), with the 512-row
//!   subarrays the SHADOW shuffle is confined to.
//! * **Timing** ([`timing`]) — JEDEC timing sets for DDR4-2666 (the paper's
//!   actual-system configuration, Table IV: 19-19-19, tRFC 467, tREFI 10400)
//!   and DDR5-4800 (the architectural-simulation configuration), including
//!   the RFM parameters (RAAIMT, tRFM) introduced in DDR5.
//! * **Commands** ([`command`]) — ACT / PRE / RD / WR / REF / RFM.
//! * **State machines** ([`bank`], [`rank`]) — per-bank ready-time tracking
//!   (tRCD, tRAS, tRP, tRC, tRTP, tWR), rank-level tRRD / tFAW windows and
//!   the auto-refresh engine, channel data-bus occupancy (tCCD / burst).
//! * **Device** ([`device`]) — assembles the above, validates command
//!   legality, and counts every command for the power model of Fig. 12.
//! * **RFM interface** ([`rfm`]) — per-bank Rolling Accumulated ACT (RAA)
//!   counters as specified by JEDEC DDR5: the memory controller issues an
//!   RFM once a bank accumulates RAAIMT activations.
//! * **Address mapping** ([`mapping`]) — PA → (channel, rank, bank, row,
//!   column) interleaving with optional XOR bank hashing (§II-B).
//! * **sPPR** ([`sppr`]) — the JEDEC runtime row-repair resource the paper
//!   points to as DRAM's existing low-latency relocation path (§VIII).
//! * **Command tracing** ([`trace`]) — an off-by-default recorder capturing
//!   every committed command for the `shadow-conformance` timing oracle.
//!
//! ## Example
//!
//! ```
//! use shadow_dram::geometry::DramGeometry;
//! use shadow_dram::timing::TimingParams;
//! use shadow_dram::device::DramDevice;
//! use shadow_dram::command::DramCommand;
//!
//! let geo = DramGeometry::ddr4_single_rank();
//! let timing = TimingParams::ddr4_2666();
//! let mut dev = DramDevice::new(geo, timing);
//!
//! // Activate row 5 of bank 0, then read column 3.
//! let bank = dev.geometry().bank_id(0, 0, 0);
//! let t_act = dev.earliest_act(bank, 0);
//! dev.issue(DramCommand::Act { bank, row: 5 }, t_act);
//! let t_rd = dev.earliest_rd(bank, t_act);
//! assert!(t_rd >= t_act + dev.timing().t_rcd);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod command;
pub mod device;
pub mod geometry;
pub mod lane;
pub mod lut;
pub mod mapping;
pub mod rank;
pub mod rfm;
pub mod sppr;
pub mod timing;
pub mod trace;

pub use command::DramCommand;
pub use device::DramDevice;
pub use geometry::{BankId, DramGeometry, RowId, SubarrayId};
pub use lane::ChannelLane;
pub use lut::GeometryLut;
pub use mapping::AddressMapper;
pub use rfm::RaaCounters;
pub use sppr::SpprResources;
pub use timing::TimingParams;
pub use trace::{CommandRecord, CommandTrace};
