//! Physical-address → DRAM-address interleaving (paper §II-B).
//!
//! The memory controller splits a physical address into a
//! (channel, rank, bank, row, column) tuple. The split is processor-specific
//! but static and reverse-engineerable (DRAMA et al.), which is exactly what
//! the paper's threat model grants the attacker. We implement the common
//! *row : rank : bank : column : channel* ordering with optional XOR bank
//! hashing, and expose both directions so attack generators can aim at
//! specific DRAM rows the way a real attacker would.

use crate::geometry::{BankId, DramGeometry, RowId};

/// A decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Flat bank identifier.
    pub bank: BankId,
    /// Row within the bank (this is the *PA-visible* row; SHADOW remaps it
    /// to a device row internally).
    pub row: RowId,
    /// Column (cache-line) within the row.
    pub column: u32,
}

/// PA→DA interleaving function.
///
/// Bit layout, from least significant:
/// `[line offset][channel][column][bank][rank][row]`
/// — cache-line interleaving across channels, then columns, then banks,
/// which is the parallelism-maximizing layout §II-B describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    geometry: DramGeometry,
    /// XOR the bank index with low row bits (common bank-hash to spread
    /// row-conflict traffic).
    pub xor_bank_hash: bool,
}

impl AddressMapper {
    /// Creates a mapper for `geometry` with bank hashing disabled.
    pub fn new(geometry: DramGeometry) -> Self {
        AddressMapper {
            geometry,
            xor_bank_hash: false,
        }
    }

    /// Creates a mapper with XOR bank hashing enabled.
    pub fn with_bank_hash(geometry: DramGeometry) -> Self {
        AddressMapper {
            geometry,
            xor_bank_hash: true,
        }
    }

    /// Decodes a physical byte address.
    ///
    /// Addresses beyond the capacity wrap (the simulator's synthetic
    /// workloads treat PA space as the DRAM capacity).
    pub fn decode(&self, pa: u64) -> DecodedAddr {
        let g = &self.geometry;
        let line = pa / g.column_bytes as u64;
        let mut x = line;
        let channel = (x % g.channels as u64) as u32;
        x /= g.channels as u64;
        let column = (x % g.columns as u64) as u32;
        x /= g.columns as u64;
        let mut bank_in_rank = (x % g.banks_per_rank() as u64) as u32;
        x /= g.banks_per_rank() as u64;
        let rank = (x % g.ranks_per_channel as u64) as u32;
        x /= g.ranks_per_channel as u64;
        let row = (x % g.rows_per_bank() as u64) as u32;
        if self.xor_bank_hash {
            bank_in_rank ^= row % g.banks_per_rank();
        }
        DecodedAddr {
            bank: g.bank_id(channel, rank, bank_in_rank),
            row,
            column,
        }
    }

    /// Encodes a DRAM location back to a physical byte address
    /// (inverse of [`decode`](AddressMapper::decode)).
    pub fn encode(&self, addr: DecodedAddr) -> u64 {
        let g = &self.geometry;
        let (channel, rank, mut bank_in_rank) = g.bank_coords(addr.bank);
        if self.xor_bank_hash {
            bank_in_rank ^= addr.row % g.banks_per_rank();
        }
        let mut line = addr.row as u64;
        line = line * g.ranks_per_channel as u64 + rank as u64;
        line = line * g.banks_per_rank() as u64 + bank_in_rank as u64;
        line = line * g.columns as u64 + addr.column as u64;
        line = line * g.channels as u64 + channel as u64;
        line * g.column_bytes as u64
    }

    /// Convenience: the physical address of `(bank, row, column 0)` — what
    /// an attacker computes during memory templating.
    pub fn pa_of_row(&self, bank: BankId, row: RowId) -> u64 {
        self.encode(DecodedAddr {
            bank,
            row,
            column: 0,
        })
    }

    /// The geometry this mapper was built for.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_roundtrip() {
        for mapper in [
            AddressMapper::new(DramGeometry::ddr4_4ch()),
            AddressMapper::with_bank_hash(DramGeometry::ddr4_4ch()),
        ] {
            let g = *mapper.geometry();
            let mut pa = 0u64;
            // Stride through a representative sample of the PA space.
            for _ in 0..10_000 {
                let d = mapper.decode(pa);
                assert_eq!(mapper.encode(d), pa % g.capacity_bytes(), "pa {pa}");
                pa += 64 * 1237; // coprime-ish stride
            }
        }
    }

    #[test]
    fn consecutive_lines_rotate_channels() {
        let mapper = AddressMapper::new(DramGeometry::ddr4_4ch());
        let a = mapper.decode(0);
        let b = mapper.decode(64);
        assert_ne!(
            mapper.geometry().channel_of(a.bank),
            mapper.geometry().channel_of(b.bank),
            "adjacent lines should hit different channels"
        );
    }

    #[test]
    fn row_bits_are_most_significant() {
        let g = DramGeometry::ddr4_single_rank();
        let mapper = AddressMapper::new(g);
        // One full row's worth of lines spans all columns/banks before the
        // row index changes.
        let lines_per_row_wrap = g.channels as u64
            * g.columns as u64
            * g.banks_per_rank() as u64
            * g.ranks_per_channel as u64;
        let a = mapper.decode(0);
        let b = mapper.decode(lines_per_row_wrap * g.column_bytes as u64);
        assert_eq!(a.row + 1, b.row);
    }

    #[test]
    fn pa_of_row_targets_requested_row() {
        let g = DramGeometry::ddr4_single_rank();
        for mapper in [AddressMapper::new(g), AddressMapper::with_bank_hash(g)] {
            let bank = g.bank_id(0, 1, 7);
            let pa = mapper.pa_of_row(bank, 4242);
            let d = mapper.decode(pa);
            assert_eq!(d.bank, bank);
            assert_eq!(d.row, 4242);
            assert_eq!(d.column, 0);
        }
    }

    #[test]
    fn bank_hash_changes_layout_but_stays_bijective() {
        let g = DramGeometry::ddr4_single_rank();
        let plain = AddressMapper::new(g);
        let hashed = AddressMapper::with_bank_hash(g);
        // Find an address where the two disagree on the bank.
        let mut differs = false;
        for i in 0..1000u64 {
            let pa = i * 8192 * 64;
            if plain.decode(pa).bank != hashed.decode(pa).bank {
                differs = true;
                break;
            }
        }
        assert!(differs, "bank hash had no effect");
    }

    #[test]
    fn capacity_wraps() {
        let g = DramGeometry::tiny();
        let mapper = AddressMapper::new(g);
        let d1 = mapper.decode(0);
        let d2 = mapper.decode(g.capacity_bytes());
        assert_eq!(d1, d2);
    }
}
