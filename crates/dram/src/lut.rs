//! Precomputed per-bank coordinate lookup tables.
//!
//! The scheduler and the device both need a bank's (channel, rank, bank
//! group) far more often than they commit commands, and the geometry decode
//! costs integer divisions. [`GeometryLut`] precomputes all three once so
//! every consumer (the device's timing checks, the memory controller's
//! frontier bookkeeping, the channel-sharded coordinator) shares one table
//! instead of growing private copies.

use crate::geometry::{BankId, DramGeometry};

/// Dense per-bank (channel, flat rank, bank-group) tables.
#[derive(Debug, Clone)]
pub struct GeometryLut {
    channel: Vec<u32>,
    rank: Vec<u32>,
    group: Vec<u32>,
}

impl GeometryLut {
    /// Precomputes the tables for `geo`.
    pub fn new(geo: &DramGeometry) -> Self {
        let bpg = geo.banks_per_group;
        let total = geo.total_banks();
        let mut channel = Vec::with_capacity(total as usize);
        let mut rank = Vec::with_capacity(total as usize);
        let mut group = Vec::with_capacity(total as usize);
        for b in 0..total {
            let bank = BankId(b);
            let (ch, _, bir) = geo.bank_coords(bank);
            channel.push(ch);
            rank.push(geo.rank_of(bank));
            group.push(bir / bpg);
        }
        GeometryLut {
            channel,
            rank,
            group,
        }
    }

    /// Channel index of `bank`.
    #[inline]
    pub fn channel_of(&self, bank: BankId) -> u32 {
        self.channel[bank.0 as usize]
    }

    /// Flat rank index (`0..total_ranks`) of `bank`.
    #[inline]
    pub fn rank_of(&self, bank: BankId) -> u32 {
        self.rank[bank.0 as usize]
    }

    /// Bank group (within the rank) of `bank`.
    #[inline]
    pub fn group_of(&self, bank: BankId) -> u32 {
        self.group[bank.0 as usize]
    }

    /// Number of banks covered.
    pub fn len(&self) -> usize {
        self.channel.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.channel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_matches_geometry_decode() {
        for geo in [
            DramGeometry::tiny(),
            DramGeometry::ddr4_4ch(),
            DramGeometry::ddr5_4ch(),
        ] {
            let lut = GeometryLut::new(&geo);
            assert_eq!(lut.len(), geo.total_banks() as usize);
            for b in 0..geo.total_banks() {
                let bank = BankId(b);
                let (ch, _, bir) = geo.bank_coords(bank);
                assert_eq!(lut.channel_of(bank), ch);
                assert_eq!(lut.rank_of(bank), geo.rank_of(bank));
                assert_eq!(lut.group_of(bank), bir / geo.banks_per_group);
            }
        }
    }

    #[test]
    fn channels_own_contiguous_bank_ranges() {
        // Channel-major flattening is what makes per-channel sharding a
        // range split; pin it here.
        let geo = DramGeometry::ddr5_4ch();
        let lut = GeometryLut::new(&geo);
        let per_ch = geo.total_banks() / geo.channels;
        for b in 0..geo.total_banks() {
            assert_eq!(lut.channel_of(BankId(b)), b / per_ch);
        }
    }
}
