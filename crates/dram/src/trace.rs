//! Command-trace recorder: the raw material for the conformance oracle.
//!
//! [`CommandTrace`] is an off-by-default recorder that captures every command
//! committed through [`DramDevice::issue`](crate::device::DramDevice::issue)
//! as a `(cycle, command)` pair in a bounded [`RingLog`]. It deliberately
//! records *after* admission — it sees exactly what the device state machines
//! saw — so a replay against the same [`TimingParams`](crate::timing)
//! reconstructs the full JEDEC legality question for each command.
//!
//! The recorder is designed to be cheap enough to leave compiled in:
//! disabled it costs one `Option` branch per command, enabled it costs one
//! ring push. It never changes simulated behaviour (the determinism suite in
//! `shadow-bench` pins this).

use crate::command::DramCommand;
use shadow_sim::ring::RingLog;
use shadow_sim::time::Cycle;

/// One committed DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Cycle at which the command was placed on the command bus.
    pub cycle: Cycle,
    /// The command itself (bank / row operands included).
    pub cmd: DramCommand,
}

/// A bounded log of committed commands, oldest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandTrace {
    log: RingLog<CommandRecord>,
}

impl CommandTrace {
    /// An empty trace retaining at most `depth` commands.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` (use `Option<CommandTrace>` to express "no
    /// tracing", not a zero-depth trace).
    pub fn new(depth: usize) -> Self {
        CommandTrace {
            log: RingLog::new(depth),
        }
    }

    /// Records one committed command.
    pub fn record(&mut self, cycle: Cycle, cmd: DramCommand) {
        self.log.push(CommandRecord { cycle, cmd });
    }

    /// Commands currently retained.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Commands evicted because the ring filled. A non-zero value means the
    /// trace is a *suffix* of the run, and window-based checks (tFAW, REF
    /// debt) must treat the first entries as having unknown prehistory.
    pub fn dropped(&self) -> u64 {
        self.log.dropped()
    }

    /// Whether the trace covers the run completely (nothing evicted).
    pub fn is_complete(&self) -> bool {
        self.log.dropped() == 0
    }

    /// Total commands ever recorded, retained or not.
    pub fn recorded(&self) -> u64 {
        self.log.recorded()
    }

    /// Iterates retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CommandRecord> {
        self.log.iter()
    }

    /// Drains the retained records into a `Vec`, oldest first.
    pub fn take(&mut self) -> Vec<CommandRecord> {
        self.log.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankId;

    #[test]
    fn records_in_order_and_reports_truncation() {
        let mut tr = CommandTrace::new(2);
        tr.record(
            10,
            DramCommand::Act {
                bank: BankId(0),
                row: 5,
            },
        );
        assert!(tr.is_complete());
        tr.record(14, DramCommand::Rd { bank: BankId(0) });
        tr.record(20, DramCommand::Pre { bank: BankId(0) });
        assert!(!tr.is_complete());
        assert_eq!(tr.dropped(), 1);
        assert_eq!(tr.recorded(), 3);
        let got = tr.take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].cycle, 14);
        assert!(matches!(got[1].cmd, DramCommand::Pre { .. }));
    }
}
