//! JEDEC timing parameter sets.
//!
//! All values are stored in clock cycles (`tCK` units) together with the
//! clock itself, so the device state machines work in integer cycles while
//! presets are derived from datasheet nanoseconds.
//!
//! The two presets mirror the paper's platforms:
//!
//! * [`TimingParams::ddr4_2666`] — Table IV: 19-19-19 (tCL-tRCD-tRP),
//!   tRFC = 467 tCK, tREFI = 10400 tCK, tCK = 0.75 ns.
//! * [`TimingParams::ddr5_4800`] — the §VII architectural-simulation
//!   configuration (tCK ≈ 0.417 ns) with the DDR5 RFM interface.

use shadow_sim::time::{ClockSpec, Cycle};

/// A complete DRAM timing parameter set, in cycles of [`TimingParams::clock`].
///
/// Passive configuration data: fields are public. Use
/// [`validate`](TimingParams::validate) after hand-editing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// The command clock.
    pub clock: ClockSpec,
    /// CAS latency (RD command to first data).
    pub t_cl: Cycle,
    /// ACT to RD/WR delay.
    pub t_rcd: Cycle,
    /// Additional ACT-to-RD/WR delay imposed by a mitigation (SHADOW's
    /// remapping-row fetch, `tRD_RM`); zero for an unmodified device.
    pub t_rcd_extra: Cycle,
    /// PRE to ACT delay (precharge time).
    pub t_rp: Cycle,
    /// ACT to PRE minimum (row restoration).
    pub t_ras: Cycle,
    /// ACT to ACT, same bank (`tRAS + tRP`).
    pub t_rc: Cycle,
    /// RD to RD, same bank group.
    pub t_ccd_l: Cycle,
    /// RD to RD, different bank group.
    pub t_ccd_s: Cycle,
    /// ACT to ACT, different bank, same bank group.
    pub t_rrd_l: Cycle,
    /// ACT to ACT, different bank group.
    pub t_rrd_s: Cycle,
    /// Four-activate window.
    pub t_faw: Cycle,
    /// Write recovery (end of write data to PRE).
    pub t_wr: Cycle,
    /// RD to PRE.
    pub t_rtp: Cycle,
    /// CAS write latency.
    pub t_cwl: Cycle,
    /// Burst length on the data bus, in clocks.
    pub t_bl: Cycle,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: Cycle,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: Cycle,
    /// Refresh cycle time (REF blocks the rank this long).
    pub t_rfc: Cycle,
    /// Average refresh interval (one REF per tREFI per rank).
    pub t_refi: Cycle,
    /// Refresh window: every row refreshed once per tREFW.
    pub t_refw: Cycle,
    /// RFM command duration (bank busy time granted for mitigation).
    pub t_rfm: Cycle,
}

impl TimingParams {
    /// DDR4-2666 (paper Table IV; tCK = 0.75 ns).
    pub fn ddr4_2666() -> Self {
        let clock = ClockSpec::from_period_ps(750);
        let p = TimingParams {
            clock,
            t_cl: 19,
            t_rcd: 19,
            t_rcd_extra: 0,
            t_rp: 19,
            t_ras: clock.ns_to_cycles(32.0), // 43
            t_rc: clock.ns_to_cycles(32.0) + 19,
            t_ccd_l: 7,
            t_ccd_s: 4,
            t_rrd_l: 7,
            t_rrd_s: 4,
            t_faw: clock.ns_to_cycles(21.0), // 28
            t_wr: clock.ns_to_cycles(15.0),  // 20
            t_rtp: clock.ns_to_cycles(7.5),  // 10
            t_cwl: 14,
            t_bl: 4, // BL8 at double data rate
            t_wtr_l: clock.ns_to_cycles(7.5),
            t_wtr_s: clock.ns_to_cycles(2.5),
            t_rfc: 467,                         // Table IV
            t_refi: 10400,                      // Table IV
            t_refw: clock.ns_to_cycles(64.0e6), // 64 ms
            // DDR4 has no native RFM; grant the DDR5-spec tRFM (195 ns) on
            // this clock — comfortably covering SHADOW's 178 ns shuffle.
            t_rfm: clock.ns_to_cycles(195.0),
        };
        debug_assert!(p.validate().is_ok());
        p
    }

    /// DDR5-4800 (architectural simulations; tCK ≈ 0.417 ns).
    pub fn ddr5_4800() -> Self {
        let clock = ClockSpec::from_freq_mhz(2400.0);
        let p = TimingParams {
            clock,
            t_cl: 40,
            t_rcd: 40,
            t_rcd_extra: 0,
            t_rp: 40,
            t_ras: clock.ns_to_cycles(32.0), // 77
            t_rc: clock.ns_to_cycles(32.0) + 40,
            t_ccd_l: 12,
            t_ccd_s: 8,
            t_rrd_l: 12,
            t_rrd_s: 8,
            t_faw: clock.ns_to_cycles(13.333), // 32
            t_wr: clock.ns_to_cycles(30.0),
            t_rtp: clock.ns_to_cycles(7.5),
            t_cwl: 38,
            t_bl: 8, // BL16
            t_wtr_l: clock.ns_to_cycles(10.0),
            t_wtr_s: clock.ns_to_cycles(2.5),
            t_rfc: clock.ns_to_cycles(295.0),
            t_refi: clock.ns_to_cycles(3900.0),
            t_refw: clock.ns_to_cycles(32.0e6), // 32 ms
            t_rfm: clock.ns_to_cycles(195.0),
        };
        debug_assert!(p.validate().is_ok());
        p
    }

    /// LPDDR5-6400 (the mobile RFM-capable generation the paper cites via
    /// the LPDDR5 standard, reference 34; tCK here is the 800 MHz command clock of
    /// a 16n-prefetch part).
    pub fn lpddr5_6400() -> Self {
        let clock = ClockSpec::from_freq_mhz(800.0);
        let p = TimingParams {
            clock,
            t_cl: clock.ns_to_cycles(18.0),
            t_rcd: clock.ns_to_cycles(18.0),
            t_rcd_extra: 0,
            t_rp: clock.ns_to_cycles(18.0),
            t_ras: clock.ns_to_cycles(42.0),
            // Summed in cycles so per-term ceiling cannot undercut tRAS+tRP.
            t_rc: clock.ns_to_cycles(42.0) + clock.ns_to_cycles(18.0),
            t_ccd_l: 4,
            t_ccd_s: 2,
            t_rrd_l: clock.ns_to_cycles(10.0),
            t_rrd_s: clock.ns_to_cycles(5.0),
            t_faw: clock.ns_to_cycles(30.0),
            t_wr: clock.ns_to_cycles(34.0),
            t_rtp: clock.ns_to_cycles(7.5),
            t_cwl: clock.ns_to_cycles(11.0),
            t_bl: 8,
            t_wtr_l: clock.ns_to_cycles(12.0),
            t_wtr_s: clock.ns_to_cycles(6.0),
            t_rfc: clock.ns_to_cycles(280.0),
            t_refi: clock.ns_to_cycles(3904.0),
            t_refw: clock.ns_to_cycles(32.0e6),
            t_rfm: clock.ns_to_cycles(210.0),
        };
        debug_assert!(p.validate().is_ok());
        p
    }

    /// A fast, small parameter set for unit tests (few-cycle constraints).
    pub fn tiny() -> Self {
        TimingParams {
            clock: ClockSpec::from_period_ps(1000),
            t_cl: 3,
            t_rcd: 3,
            t_rcd_extra: 0,
            t_rp: 3,
            t_ras: 6,
            t_rc: 9,
            t_ccd_l: 2,
            t_ccd_s: 1,
            t_rrd_l: 2,
            t_rrd_s: 1,
            t_faw: 8,
            t_wr: 3,
            t_rtp: 2,
            t_cwl: 2,
            t_bl: 2,
            t_wtr_l: 2,
            t_wtr_s: 1,
            t_rfc: 20,
            t_refi: 1000,
            t_refw: 3200,
            t_rfm: 15,
        }
    }

    /// Effective ACT→RD/WR latency including any mitigation extension.
    pub fn t_rcd_effective(&self) -> Cycle {
        self.t_rcd + self.t_rcd_extra
    }

    /// Checks internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must cover tRAS + tRP ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_ras < self.t_rcd {
            return Err("tRAS must be at least tRCD".into());
        }
        if self.t_ccd_l < self.t_ccd_s || self.t_rrd_l < self.t_rrd_s {
            return Err("long (same-bank-group) constraints must dominate short ones".into());
        }
        if self.t_faw < self.t_rrd_s {
            return Err("tFAW must be at least tRRD_S".into());
        }
        if self.t_refi <= self.t_rfc {
            return Err("tREFI must exceed tRFC or refresh starves the rank".into());
        }
        if self.t_refw < self.t_refi {
            return Err("tREFW must cover at least one tREFI".into());
        }
        Ok(())
    }

    /// Number of REF commands per refresh window (8192 for standard DDR4).
    pub fn refs_per_window(&self) -> u64 {
        self.t_refw / self.t_refi
    }

    /// Converts a cycle count on this clock to nanoseconds.
    pub fn cycles_to_ns(&self, c: Cycle) -> f64 {
        self.clock.cycles_to_ns(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_matches_table_iv() {
        let t = TimingParams::ddr4_2666();
        assert_eq!(t.t_cl, 19);
        assert_eq!(t.t_rcd, 19);
        assert_eq!(t.t_rp, 19);
        assert_eq!(t.t_rfc, 467);
        assert_eq!(t.t_refi, 10400);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn ddr4_refresh_window_has_8k_refs() {
        let t = TimingParams::ddr4_2666();
        // 64 ms / 7.8 us ≈ 8205 ≈ the canonical 8192 REF slots.
        let refs = t.refs_per_window();
        assert!((8000..8400).contains(&refs), "refs per window = {refs}");
    }

    #[test]
    fn ddr5_valid_and_faster_clock() {
        let t = TimingParams::ddr5_4800();
        assert!(t.validate().is_ok());
        assert!(t.clock.period_ps() < TimingParams::ddr4_2666().clock.period_ps());
    }

    #[test]
    fn tiny_valid() {
        assert!(TimingParams::tiny().validate().is_ok());
    }

    #[test]
    fn lpddr5_valid_and_slow_clock() {
        let t = TimingParams::lpddr5_6400();
        assert!(t.validate().is_ok());
        // LPDDR5's command clock is slower than DDR5's despite the higher
        // data rate (16n prefetch).
        assert!(t.clock.period_ps() > TimingParams::ddr5_4800().clock.period_ps());
    }

    #[test]
    fn rcd_effective_includes_extra() {
        let mut t = TimingParams::ddr4_2666();
        assert_eq!(t.t_rcd_effective(), 19);
        t.t_rcd_extra = 6; // SHADOW's tRD_RM at DDR4-2666 ≈ 4 ns ≈ 6 tCK
        assert_eq!(t.t_rcd_effective(), 25); // the paper's tRCD' = 25 tCK
    }

    #[test]
    fn validate_catches_bad_trc() {
        let mut t = TimingParams::tiny();
        t.t_rc = 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_refresh_starvation() {
        let mut t = TimingParams::tiny();
        t.t_refi = t.t_rfc;
        assert!(t.validate().is_err());
    }

    #[test]
    fn cycles_to_ns_uses_clock() {
        let t = TimingParams::ddr4_2666();
        assert!((t.cycles_to_ns(19) - 14.25).abs() < 1e-9);
    }
}
