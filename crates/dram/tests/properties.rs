//! Randomized property tests: the device never violates its own protocol
//! under arbitrary (legal) command streams, and auxiliary structures keep
//! their invariants under arbitrary use.
//!
//! Inputs come from the workspace's deterministic `Xoshiro256` generator
//! (fixed seeds), so every failure is reproducible without an external
//! property-testing framework.

use shadow_dram::command::DramCommand;
use shadow_dram::device::DramDevice;
use shadow_dram::geometry::{BankId, DramGeometry};
use shadow_dram::rank::RankState;
use shadow_dram::rfm::RaaCounters;
use shadow_dram::sppr::SpprResources;
use shadow_dram::timing::TimingParams;
use shadow_sim::rng::Xoshiro256;

/// Drives a device with a random-but-legal command stream: at each step a
/// random bank gets whichever command its state allows, at the earliest
/// legal cycle. In debug builds the device's internal assertions audit
/// every commit.
fn drive(seed_ops: &[(u8, u8)]) -> DramDevice {
    let geo = DramGeometry::tiny();
    let mut dev = DramDevice::new(geo, TimingParams::tiny());
    let mut now = 0u64;
    for &(bank_sel, op) in seed_ops {
        let bank = BankId(bank_sel as u32 % geo.total_banks());
        // Refresh has priority if due (keeps the stream legal forever).
        for rank in 0..geo.total_ranks() {
            if dev.refresh_due(rank, now) {
                // Close all open banks of the rank first.
                let bpr = geo.banks_per_rank();
                for b in 0..bpr {
                    let id = BankId(rank * bpr + b);
                    if dev.open_row(id).is_some() {
                        let t = dev.earliest_pre(id, now);
                        dev.issue(DramCommand::Pre { bank: id }, t);
                        now = now.max(t);
                    }
                }
                let t = dev.earliest_ref(rank, now);
                dev.issue(DramCommand::Ref { rank }, t);
                now = now.max(t);
            }
        }
        match (dev.open_row(bank), op % 4) {
            (None, _) => {
                let row = (op as u32 * 7) % geo.rows_per_bank();
                let t = dev.earliest_act(bank, now);
                dev.issue(DramCommand::Act { bank, row }, t);
                now = now.max(t);
            }
            (Some(_), 0) => {
                let t = dev.earliest_pre(bank, now);
                dev.issue(DramCommand::Pre { bank }, t);
                now = now.max(t);
            }
            (Some(_), 1) => {
                let t = dev.earliest_wr(bank, now);
                dev.issue(DramCommand::Wr { bank }, t);
                now = now.max(t);
            }
            (Some(_), _) => {
                let t = dev.earliest_rd(bank, now);
                dev.issue(DramCommand::Rd { bank }, t);
                now = now.max(t);
            }
        }
    }
    dev
}

/// Any legal command stream executes without protocol violations, and the
/// command accounting stays consistent.
#[test]
fn random_legal_streams_never_violate_protocol() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0001);
    for _ in 0..40 {
        let len = 1 + gen.gen_index(299);
        let ops: Vec<(u8, u8)> = (0..len)
            .map(|_| (gen.next_u32() as u8, gen.next_u32() as u8))
            .collect();
        let dev = drive(&ops);
        let acts = dev.stats().get("ACT");
        let pres = dev.stats().get("PRE");
        assert!(acts >= pres, "more PREs ({pres}) than ACTs ({acts})");
        // Each op issues exactly one command beyond refresh management.
        let total: u64 = ["ACT", "PRE", "RD", "WR"]
            .iter()
            .map(|c| dev.stats().get(c))
            .sum();
        assert!(total >= ops.len() as u64);
    }
}

/// RAA counters: for any interleaving of ACTs and RFMs, the counter equals
/// total ACTs minus RAAIMT per RFM (floored at zero), and `needs_rfm`
/// matches the threshold comparison.
#[test]
fn raa_counter_arithmetic() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0002);
    for _ in 0..50 {
        let len = 1 + gen.gen_index(499);
        let raaimt = 8u32;
        let mut raa = RaaCounters::new(1, raaimt);
        let bank = BankId(0);
        let mut model: i64 = 0;
        for _ in 0..len {
            if gen.gen_bool(0.5) {
                raa.on_act(bank);
                model += 1;
            } else {
                raa.on_rfm(bank);
                model = (model - raaimt as i64).max(0);
            }
            assert_eq!(raa.count(bank) as i64, model);
            assert_eq!(raa.needs_rfm(bank), model >= raaimt as i64);
        }
    }
}

/// RAA saturation edges: for arbitrary RAAIMT, the boundary behavior is
/// exact at threshold−1 (no demand), threshold (demand fires on exactly
/// that ACT), and far above threshold (every credit subtracts exactly
/// RAAIMT until the floor, then saturates at zero — never wraps). These
/// are the edges the PRAC per-row counters inherit for their recovery
/// accounting.
#[test]
fn raa_saturation_and_threshold_edges() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0004);
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    for _ in 0..cases {
        let raaimt = 1 + gen.gen_range(0, 64) as u32;
        let b = BankId(0);
        let mut raa = RaaCounters::new(1, raaimt);

        // Threshold − 1: no demand, no obligation.
        for i in 0..raaimt.saturating_sub(1) {
            assert!(!raa.on_act(b), "premature demand at {i} (RAAIMT {raaimt})");
        }
        assert_eq!(raa.count(b), raaimt - 1);
        assert!(!raa.needs_rfm(b));
        assert_eq!(raa.rfms_required(), 0);

        // Threshold: exactly this ACT fires.
        assert!(raa.on_act(b), "no demand at RAAIMT {raaimt}");
        assert!(raa.needs_rfm(b));
        assert_eq!(raa.rfms_required(), 1);

        // Far above threshold: drive to `mult × RAAIMT + extra`, then
        // drain with a random mix of RFM and REF credits. Every credit
        // subtracts exactly RAAIMT while the count allows, and the
        // sequence must reach zero in ceil(count / RAAIMT) credits with
        // the final one saturating rather than wrapping.
        let mult = 2 + gen.gen_range(0, 6) as u32;
        let extra = gen.gen_range(0, raaimt as u64) as u32;
        let target = mult * raaimt + extra;
        while raa.count(b) < target {
            raa.on_act(b);
        }
        assert_eq!(raa.count(b), target);
        let mut credits = 0u32;
        while raa.count(b) > 0 {
            let before = raa.count(b);
            if gen.gen_bool(0.5) {
                raa.on_rfm(b);
            } else {
                raa.on_ref(b);
            }
            credits += 1;
            assert_eq!(raa.count(b), before.saturating_sub(raaimt));
            assert_eq!(raa.needs_rfm(b), raa.count(b) >= raaimt);
        }
        assert_eq!(credits, target.div_ceil(raaimt));
        // At the floor, further credits are saturating no-ops.
        raa.on_rfm(b);
        raa.on_ref(b);
        assert_eq!(raa.count(b), 0);
        assert!(!raa.needs_rfm(b));
    }
}

/// RFM/REF postponement interaction: for arbitrary postponement depths up
/// to the JEDEC ceiling, `must_refresh` trips exactly at
/// [`RankState::MAX_POSTPONE`], draining the debt clears the urgency, and
/// each drained REF credits the RAA counter by exactly RAAIMT (floored at
/// zero) — so a postponement stretch can never leave phantom RFM demand
/// behind. This is the shared machinery the PRAC recovery window rides on.
#[test]
fn rfm_postponement_ceiling_credits_raa() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0005);
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let tp = TimingParams::tiny();
    for _ in 0..cases {
        let raaimt = 1 + gen.gen_range(0, 32) as u32;
        let acts = gen.gen_range(0, 12 * raaimt as u64) as u32;
        let debt = 1 + gen.gen_range(0, RankState::MAX_POSTPONE + 4);

        let mut rank = RankState::new(&tp);
        let mut raa = RaaCounters::new(1, raaimt);
        let b = BankId(0);
        for _ in 0..acts {
            raa.on_act(b);
        }

        // Let `debt` tREFI periods elapse without a REF.
        let now = tp.t_refi * debt;
        assert_eq!(rank.refresh_debt(now, &tp), debt);
        assert_eq!(
            rank.must_refresh(now, &tp),
            debt >= RankState::MAX_POSTPONE,
            "urgency must trip exactly at the ceiling (debt {debt})"
        );

        // Drain the whole debt; every REF credits the RAA counter.
        let mut t = now;
        let mut expected = acts;
        for _ in 0..debt {
            let (done, _) = rank.on_refresh(t, 64, &tp);
            raa.on_ref(b);
            expected = expected.saturating_sub(raaimt);
            assert_eq!(raa.count(b), expected);
            t = done;
        }
        assert_eq!(rank.refresh_debt(t, &tp), 0, "drain left debt behind");
        assert!(!rank.must_refresh(t, &tp));
        assert_eq!(rank.ref_count(), debt);
        // A fully-drained postponement stretch leaves demand only if the
        // ACT volume outran the credits.
        assert_eq!(
            raa.needs_rfm(b),
            acts.saturating_sub(debt as u32 * raaimt) >= raaimt
        );
    }
}

/// sPPR: translations always form an injection (no two faulty rows may
/// share a spare), and undo exactly restores identity.
#[test]
fn sppr_translation_injective() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0003);
    for _ in 0..100 {
        let len = 1 + gen.gen_index(19);
        let rows: Vec<u32> = (0..len).map(|_| gen.gen_range(0, 64) as u32).collect();
        let mut sppr = SpprResources::new(1000, 8);
        let mut repaired = Vec::new();
        for r in rows {
            if sppr.repair(r).is_ok() {
                repaired.push(r);
            }
        }
        let translated: Vec<u32> = repaired.iter().map(|&r| sppr.translate(r)).collect();
        let mut dedup = translated.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), translated.len(), "spares shared");
        for &r in &repaired {
            sppr.undo(r);
            assert_eq!(sppr.translate(r), r);
        }
    }
}
