//! Randomized property tests: the device never violates its own protocol
//! under arbitrary (legal) command streams, and auxiliary structures keep
//! their invariants under arbitrary use.
//!
//! Inputs come from the workspace's deterministic `Xoshiro256` generator
//! (fixed seeds), so every failure is reproducible without an external
//! property-testing framework.

use shadow_dram::command::DramCommand;
use shadow_dram::device::DramDevice;
use shadow_dram::geometry::{BankId, DramGeometry};
use shadow_dram::rfm::RaaCounters;
use shadow_dram::sppr::SpprResources;
use shadow_dram::timing::TimingParams;
use shadow_sim::rng::Xoshiro256;

/// Drives a device with a random-but-legal command stream: at each step a
/// random bank gets whichever command its state allows, at the earliest
/// legal cycle. In debug builds the device's internal assertions audit
/// every commit.
fn drive(seed_ops: &[(u8, u8)]) -> DramDevice {
    let geo = DramGeometry::tiny();
    let mut dev = DramDevice::new(geo, TimingParams::tiny());
    let mut now = 0u64;
    for &(bank_sel, op) in seed_ops {
        let bank = BankId(bank_sel as u32 % geo.total_banks());
        // Refresh has priority if due (keeps the stream legal forever).
        for rank in 0..geo.total_ranks() {
            if dev.refresh_due(rank, now) {
                // Close all open banks of the rank first.
                let bpr = geo.banks_per_rank();
                for b in 0..bpr {
                    let id = BankId(rank * bpr + b);
                    if dev.open_row(id).is_some() {
                        let t = dev.earliest_pre(id, now);
                        dev.issue(DramCommand::Pre { bank: id }, t);
                        now = now.max(t);
                    }
                }
                let t = dev.earliest_ref(rank, now);
                dev.issue(DramCommand::Ref { rank }, t);
                now = now.max(t);
            }
        }
        match (dev.open_row(bank), op % 4) {
            (None, _) => {
                let row = (op as u32 * 7) % geo.rows_per_bank();
                let t = dev.earliest_act(bank, now);
                dev.issue(DramCommand::Act { bank, row }, t);
                now = now.max(t);
            }
            (Some(_), 0) => {
                let t = dev.earliest_pre(bank, now);
                dev.issue(DramCommand::Pre { bank }, t);
                now = now.max(t);
            }
            (Some(_), 1) => {
                let t = dev.earliest_wr(bank, now);
                dev.issue(DramCommand::Wr { bank }, t);
                now = now.max(t);
            }
            (Some(_), _) => {
                let t = dev.earliest_rd(bank, now);
                dev.issue(DramCommand::Rd { bank }, t);
                now = now.max(t);
            }
        }
    }
    dev
}

/// Any legal command stream executes without protocol violations, and the
/// command accounting stays consistent.
#[test]
fn random_legal_streams_never_violate_protocol() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0001);
    for _ in 0..40 {
        let len = 1 + gen.gen_index(299);
        let ops: Vec<(u8, u8)> = (0..len)
            .map(|_| (gen.next_u32() as u8, gen.next_u32() as u8))
            .collect();
        let dev = drive(&ops);
        let acts = dev.stats().get("ACT");
        let pres = dev.stats().get("PRE");
        assert!(acts >= pres, "more PREs ({pres}) than ACTs ({acts})");
        // Each op issues exactly one command beyond refresh management.
        let total: u64 = ["ACT", "PRE", "RD", "WR"]
            .iter()
            .map(|c| dev.stats().get(c))
            .sum();
        assert!(total >= ops.len() as u64);
    }
}

/// RAA counters: for any interleaving of ACTs and RFMs, the counter equals
/// total ACTs minus RAAIMT per RFM (floored at zero), and `needs_rfm`
/// matches the threshold comparison.
#[test]
fn raa_counter_arithmetic() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0002);
    for _ in 0..50 {
        let len = 1 + gen.gen_index(499);
        let raaimt = 8u32;
        let mut raa = RaaCounters::new(1, raaimt);
        let bank = BankId(0);
        let mut model: i64 = 0;
        for _ in 0..len {
            if gen.gen_bool(0.5) {
                raa.on_act(bank);
                model += 1;
            } else {
                raa.on_rfm(bank);
                model = (model - raaimt as i64).max(0);
            }
            assert_eq!(raa.count(bank) as i64, model);
            assert_eq!(raa.needs_rfm(bank), model >= raaimt as i64);
        }
    }
}

/// sPPR: translations always form an injection (no two faulty rows may
/// share a spare), and undo exactly restores identity.
#[test]
fn sppr_translation_injective() {
    let mut gen = Xoshiro256::seed_from_u64(0xD4A8_0003);
    for _ in 0..100 {
        let len = 1 + gen.gen_index(19);
        let rows: Vec<u32> = (0..len).map(|_| gen.gen_range(0, 64) as u32).collect();
        let mut sppr = SpprResources::new(1000, 8);
        let mut repaired = Vec::new();
        for r in rows {
            if sppr.repair(r).is_ok() {
                repaired.push(r);
            }
        }
        let translated: Vec<u32> = repaired.iter().map(|&r| sppr.translate(r)).collect();
        let mut dedup = translated.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), translated.len(), "spares shared");
        for &r in &repaired {
            sppr.undo(r);
            assert_eq!(sppr.translate(r), r);
        }
    }
}
