//! # shadow-repro
//!
//! A from-scratch Rust reproduction of **SHADOW: Preventing Row Hammer in
//! DRAM with Intra-Subarray Row Shuffling** (Wi, Park, Ko, Kim, Kim, Lee,
//! Ahn — HPCA 2023).
//!
//! This umbrella crate re-exports the workspace's public surface and hosts
//! the runnable examples and cross-crate integration tests. See:
//!
//! * `DESIGN.md` — system inventory, substitutions, per-experiment index;
//! * `EXPERIMENTS.md` — paper-vs-measured results for every table/figure;
//! * `README.md` — install, quickstart, architecture overview.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `shadow-sim` | deterministic clock/RNG/stats/event kernel |
//! | [`crypto`] | `shadow-crypto` | PRINCE cipher, CSPRNG, LFSR |
//! | [`trackers`] | `shadow-trackers` | Misra–Gries, CbS, counting Bloom filters, reservoir |
//! | [`dram`] | `shadow-dram` | cycle-level DRAM device, timing, RFM, mapping |
//! | [`rh`] | `shadow-rh` | Row Hammer fault model and attack patterns |
//! | [`core`] | `shadow-core` | the SHADOW mechanism + Appendix XI security model |
//! | [`mitigations`] | `shadow-mitigations` | all baselines behind one trait |
//! | [`workloads`] | `shadow-workloads` | SPEC/GAPBS/NPB-class generators, mixes |
//! | [`memsys`] | `shadow-memsys` | the full-system simulator |
//! | [`analysis`] | `shadow-analysis` | power / area / RC-timing / Monte-Carlo models |
//!
//! ## Quickstart
//!
//! ```
//! use shadow_repro::memsys::{MemSystem, SystemConfig};
//! use shadow_repro::mitigations::NoMitigation;
//! use shadow_repro::workloads::{RandomStream, RequestStream};
//!
//! let cfg = SystemConfig::tiny();
//! let streams: Vec<Box<dyn RequestStream>> =
//!     vec![Box::new(RandomStream::new(1 << 20, 42))];
//! let report = MemSystem::new(cfg, streams, Box::new(NoMitigation::new())).run();
//! assert!(report.total_completed() > 0);
//! ```

#![warn(missing_docs)]

pub use shadow_analysis as analysis;
pub use shadow_core as core;
pub use shadow_crypto as crypto;
pub use shadow_dram as dram;
pub use shadow_memsys as memsys;
pub use shadow_mitigations as mitigations;
pub use shadow_rh as rh;
pub use shadow_sim as sim;
pub use shadow_trackers as trackers;
pub use shadow_workloads as workloads;
