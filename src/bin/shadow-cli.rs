//! `shadow-cli` — command-line driver for one-off experiments.
//!
//! ```sh
//! shadow-cli --workload mix-high --scheme SHADOW --hcnt 4096
//! shadow-cli --workload gapbs --scheme RRS --ddr5 --requests 100000
//! shadow-cli --list
//! ```
//!
//! Runs the workload under the chosen scheme *and* the unprotected
//! baseline, then prints performance, command mix, power, and flips.

use shadow_bench::{build_mitigation, workload, Scheme};
use shadow_repro::analysis::power::{PowerModel, PowerReport, SchemeEnergy};
use shadow_repro::memsys::{MemSystem, PagePolicy, SystemConfig};
use shadow_repro::rh::RhParams;

#[derive(Debug)]
struct Args {
    workload: String,
    scheme: Scheme,
    h_cnt: u64,
    blast: u32,
    requests: u64,
    ddr5: bool,
    closed_page: bool,
}

const USAGE: &str = "\
shadow-cli — SHADOW reproduction experiment driver

USAGE:
    shadow-cli [OPTIONS]

OPTIONS:
    --workload <name>   workload (default mix-high); see --list
    --scheme <name>     mitigation (default SHADOW); see --list
    --hcnt <n>          hammer threshold (default 4096)
    --blast <n>         blast radius (default 3)
    --requests <n>      completed-request target (default 60000)
    --ddr5              DDR5-4800 system instead of DDR4-2666
    --closed-page       closed-page controller policy
    --list              list workloads and schemes
    --help              this text
";

fn parse_args() -> Result<Option<Args>, String> {
    parse_from(std::env::args().skip(1))
}

fn parse_from(args_iter: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        workload: "mix-high".into(),
        scheme: Scheme::Shadow,
        h_cnt: 4096,
        blast: 3,
        requests: 60_000,
        ddr5: false,
        closed_page: false,
    };
    let mut it = args_iter;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workload" => args.workload = value("--workload")?,
            "--scheme" => {
                let v = value("--scheme")?;
                args.scheme = Scheme::from_name(&v)
                    .ok_or_else(|| format!("unknown scheme '{v}' (try --list)"))?;
            }
            "--hcnt" => {
                args.h_cnt = value("--hcnt")?
                    .parse()
                    .map_err(|_| "bad --hcnt".to_string())?
            }
            "--blast" => {
                args.blast = value("--blast")?
                    .parse()
                    .map_err(|_| "bad --blast".to_string())?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "bad --requests".to_string())?
            }
            "--ddr5" => args.ddr5 = true,
            "--closed-page" => args.closed_page = true,
            "--list" => {
                println!("workloads: spec-high spec-med spec-low gapbs npb mix-high mix-blend");
                println!("           mix-random-<n> random-stream <any SPEC app name>");
                print!("schemes:  ");
                for s in Scheme::all() {
                    print!(" {}", s.name());
                }
                println!();
                return Ok(None);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(Some(args))
}

fn main() {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut cfg = if args.ddr5 {
        SystemConfig::ddr5_sim()
    } else {
        SystemConfig::ddr4_actual_system()
    };
    cfg.rh = RhParams::new(args.h_cnt, args.blast);
    cfg.target_requests = args.requests;
    if args.closed_page {
        cfg.page_policy = PagePolicy::Closed;
    }

    eprintln!(
        "running {} under {} ({} H_cnt={} blast={} requests={})",
        args.workload,
        args.scheme.name(),
        if args.ddr5 { "DDR5-4800" } else { "DDR4-2666" },
        args.h_cnt,
        args.blast,
        args.requests
    );

    let base = MemSystem::new(
        cfg,
        workload(&args.workload, &cfg, 0xC11),
        build_mitigation(Scheme::Baseline, &cfg),
    )
    .run();
    let rep = MemSystem::new(
        cfg,
        workload(&args.workload, &cfg, 0xC11),
        build_mitigation(args.scheme, &cfg),
    )
    .run();

    let pm = if args.ddr5 {
        PowerModel::ddr5_4800()
    } else {
        PowerModel::ddr4_2666()
    };
    let energy = match args.scheme {
        Scheme::Shadow | Scheme::ShadowFiltered => SchemeEnergy::shadow(&pm),
        Scheme::Parfm
        | Scheme::MithrilPerf
        | Scheme::MithrilArea
        | Scheme::Para
        | Scheme::Graphene
        | Scheme::Panopticon => SchemeEnergy::trr(&pm, args.blast),
        _ => SchemeEnergy::none(),
    };
    let ranks = cfg.geometry.total_ranks();
    let p_base = PowerReport::from_report(&pm, &SchemeEnergy::none(), &base, ranks);
    let p_rep = PowerReport::from_report(&pm, &energy, &rep, ranks);

    println!("\n{:<24} {:>14} {:>14}", "", "baseline", args.scheme.name());
    println!("{:<24} {:>14} {:>14}", "cycles", base.cycles, rep.cycles);
    for cmd in ["ACT", "PRE", "RD", "WR", "REF", "RFM"] {
        println!(
            "{:<24} {:>14} {:>14}",
            cmd,
            base.commands.get(cmd),
            rep.commands.get(cmd)
        );
    }
    println!(
        "{:<24} {:>14} {:>14}",
        "bit flips",
        base.total_flips(),
        rep.total_flips()
    );
    println!(
        "{:<24} {:>14} {:>14.4}",
        "relative performance",
        1.0,
        rep.relative_performance(&base)
    );
    println!(
        "{:<24} {:>14.2} {:>14.2}",
        "DRAM power (W)", p_base.dram_w, p_rep.dram_w
    );
    println!(
        "{:<24} {:>14} {:>14.4}",
        "system power rel",
        1.0,
        p_rep.relative_to(&p_base)
    );
    if let Some(apr) = rep.acts_per_rfm() {
        println!("{:<24} {:>14} {:>14.1}", "ACTs per RFM", "-", apr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Option<Args>, String> {
        parse_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap().unwrap();
        assert_eq!(a.workload, "mix-high");
        assert_eq!(a.scheme, Scheme::Shadow);
        assert_eq!(a.h_cnt, 4096);
        assert!(!a.ddr5);
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--workload",
            "gapbs",
            "--scheme",
            "rrs",
            "--hcnt",
            "2048",
            "--blast",
            "5",
            "--requests",
            "1000",
            "--ddr5",
            "--closed-page",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(a.workload, "gapbs");
        assert_eq!(a.scheme, Scheme::Rrs);
        assert_eq!(a.h_cnt, 2048);
        assert_eq!(a.blast, 5);
        assert_eq!(a.requests, 1000);
        assert!(a.ddr5 && a.closed_page);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--hcnt"]).is_err());
    }

    #[test]
    fn bad_scheme_rejected() {
        assert!(parse(&["--scheme", "magic"]).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap().map(|_| ()), None);
    }
}
